"""The experiment registry: discovery, lookup, and the run driver.

Every ``exp_*`` module under :mod:`repro.experiments` registers its
:class:`~repro.experiments.spec.ExperimentSpec` at import time;
:func:`ensure_loaded` walks the package so nothing has to maintain an
experiment list by hand.  :func:`run_experiment` is the one driver the
CLI and the multiseed sweeps share: it runs every variant across the
requested seeds (optionally in worker processes, via
:func:`repro.experiments.multiseed.run_seeds`), evaluates the
spec-declared shape checks per seed, aggregates multi-seed tables to
mean±std, and returns the tables plus a provenance-stamped
:class:`~repro.experiments.spec.RunArtifact`.
"""

from __future__ import annotations

import functools
import importlib
import pkgutil
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro.experiments as _experiments_pkg
from repro.experiments.common import ExperimentResult
from repro.experiments.multiseed import aggregate_rows, run_seeds
from repro.experiments.spec import ExperimentSpec, RunArtifact, VariantSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import wall_clock

_SPECS: Dict[str, ExperimentSpec] = {}
_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec``; called at the bottom of every ``exp_*`` module.

    Re-registration from the same module is idempotent (modules may be
    re-imported); two modules claiming one id is a hard error.
    """
    existing = _SPECS.get(spec.exp_id)
    if existing is not None and existing.module != spec.module:
        raise ValueError(
            f"experiment id {spec.exp_id!r} registered by both "
            f"{existing.module} and {spec.module}"
        )
    _SPECS[spec.exp_id] = spec
    return spec


def ensure_loaded() -> None:
    """Import every ``exp_*`` module so all specs are registered."""
    global _LOADED
    if _LOADED:
        return
    module_names = sorted(
        info.name
        for info in pkgutil.iter_modules(_experiments_pkg.__path__)
        if info.name.startswith("exp_")
    )
    for name in module_names:
        importlib.import_module(f"repro.experiments.{name}")
    _LOADED = True


def experiment_modules() -> List[str]:
    """Dotted names of every discoverable ``exp_*`` module."""
    return sorted(
        f"repro.experiments.{info.name}"
        for info in pkgutil.iter_modules(_experiments_pkg.__path__)
        if info.name.startswith("exp_")
    )


def all_specs() -> List[ExperimentSpec]:
    """Registered specs in experiment-number order."""
    ensure_loaded()
    return sorted(_SPECS.values(), key=lambda spec: (spec.order, spec.exp_id))


def experiment_ids() -> List[str]:
    return [spec.exp_id for spec in all_specs()]


def get(exp_id: str) -> ExperimentSpec:
    ensure_loaded()
    try:
        return _SPECS[exp_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise KeyError(f"unknown experiment {exp_id!r} (known: {known})") from None


# ---------------------------------------------------------------------------
# The run driver
# ---------------------------------------------------------------------------


def _variant_payload(
    spec_ref: Union[str, ExperimentSpec],
    variant_ref: Union[str, VariantSpec],
    *,
    seed: int,
) -> Dict[str, object]:
    """Picklable per-seed entry point handed to ``multiseed.run_seeds``.

    For parallel sweeps the refs are strings, resolved against the
    registry inside the worker process; serial callers may pass the
    objects directly (which also lets unregistered specs run, e.g. in
    tests).
    """
    spec = spec_ref if isinstance(spec_ref, ExperimentSpec) else get(spec_ref)
    variant = (
        variant_ref
        if isinstance(variant_ref, VariantSpec)
        else spec.variant(variant_ref)
    )
    result = variant.run(seed)
    return {
        "name": result.name,
        "notes": result.notes,
        "rows": result.rows,
        "counters": result.counters,
    }


def _aggregate_result(
    payloads: Sequence[Dict[str, object]], seeds: Sequence[int]
) -> ExperimentResult:
    """Mean±std table across per-seed payloads of one variant."""
    row_counts = [len(payload["rows"]) for payload in payloads]  # type: ignore[arg-type]
    if len(set(row_counts)) != 1:
        raise ValueError(
            f"{payloads[0]['name']}: row count varies across seeds "
            f"({sorted(set(row_counts))}); cannot aggregate"
        )
    first = payloads[0]
    notes = str(first["notes"])
    aggregated = ExperimentResult(
        name=str(first["name"]),
        notes=(f"mean±std over seeds {list(seeds)}; " + notes).strip("; "),
    )
    for index in range(row_counts[0]):
        per_seed = [payload["rows"][index] for payload in payloads]  # type: ignore[index]
        aggregated.add_row(**aggregate_rows(per_seed))
    return aggregated


def run_experiment(
    spec: ExperimentSpec,
    seeds: Sequence[int],
    parallel: bool = False,
    max_workers: Optional[int] = None,
    evaluate: bool = True,
) -> Tuple[List[ExperimentResult], RunArtifact]:
    """Run every variant of ``spec`` across ``seeds``.

    Returns the displayable tables (one per variant: the single-seed
    table, or the mean±std aggregate for multi-seed runs) and the
    :class:`RunArtifact` recording provenance and per-seed check
    outcomes.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    started = wall_clock()
    metrics = MetricsRegistry()
    tables: List[ExperimentResult] = []
    artifact_tables: List[Dict[str, object]] = []
    check_entries: List[Dict[str, object]] = []
    counters: Dict[str, int] = {}
    for variant in spec.variants:
        if parallel:
            payload_fn = functools.partial(
                _variant_payload, spec.exp_id, variant.name
            )
        else:
            payload_fn = functools.partial(_variant_payload, spec, variant)
        variant_started = wall_clock()
        payloads = run_seeds(
            payload_fn, seeds, parallel=parallel, max_workers=max_workers
        )
        metrics.histogram("run.variant_wall_s").observe(
            wall_clock() - variant_started
        )
        for seed, payload in zip(seeds, payloads):
            for name in sorted(payload["counters"]):  # type: ignore[arg-type]
                counters[name] = counters.get(name, 0) + payload["counters"][name]  # type: ignore[index]
            if evaluate:
                seed_result = ExperimentResult(
                    name=str(payload["name"]),
                    rows=list(payload["rows"]),  # type: ignore[arg-type]
                    notes=str(payload["notes"]),
                )
                for outcome in variant.evaluate(seed_result):
                    check_entries.append(
                        {
                            "variant": variant.name,
                            "seed": seed,
                            "check": outcome.check,
                            "passed": outcome.passed,
                            "detail": outcome.detail,
                        }
                    )
        if len(seeds) == 1:
            payload = payloads[0]
            table = ExperimentResult(
                name=str(payload["name"]),
                rows=list(payload["rows"]),  # type: ignore[arg-type]
                notes=str(payload["notes"]),
            )
            table.counters.update(payload["counters"])  # type: ignore[arg-type]
        else:
            table = _aggregate_result(payloads, seeds)
        tables.append(table)
        artifact_tables.append(
            {
                "variant": variant.name,
                "name": table.name,
                "notes": table.notes,
                "rows": table.rows,
            }
        )
    metrics.absorb(counters, prefix="alloc.")
    metrics.gauge("run.seeds").set(len(seeds))
    metrics.gauge("run.variants").set(len(spec.variants))
    metrics.gauge("run.rows").set(
        sum(len(table["rows"]) for table in artifact_tables)  # type: ignore[arg-type]
    )
    metrics.counter("run.checks_evaluated").inc(len(check_entries))
    metrics.counter("run.checks_failed").inc(
        sum(1 for entry in check_entries if not entry["passed"])
    )
    artifact = RunArtifact(
        experiment=spec.exp_id,
        title=spec.title,
        source=spec.source,
        module=spec.module,
        seeds=[int(seed) for seed in seeds],
        parallel=parallel,
        wall_time_s=wall_clock() - started,
        tables=artifact_tables,
        checks=check_entries,
        counters=counters,
        metrics=metrics.snapshot(),
    )
    return tables, artifact
