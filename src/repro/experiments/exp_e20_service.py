"""E20 -- live service mode: the control loop on a wire (DESIGN.md §14).

The paper's planes are *services*: an AppP and an InfP that exchange
A2I/I2A state over a network, not method calls inside one process.
E20 exercises the transport subsystem that makes that real, in three
escalating regimes:

* ``loopback-equivalence`` -- the keystone gate.  The E2 flash-crowd
  world run with its I2A glass behind a zero-latency loopback wire
  (encode → dispatch → decode on every query) must be *byte-identical*
  in its causal trace to the plain in-process run, modulo the
  ``transport.*`` bookkeeping events.  The wire is pure plumbing.
* ``latency-sweep`` -- the measurement.  Injected wire latency delays
  I2A answers; the PR 9 ``hint_to_action`` loop stage stretches from
  same-control-tick (in-process) to multiple seconds as the hint a
  governor tick acts on grows stale.  Control-loop latency is the cost
  of distribution, and the sweep prices it.
* ``degraded`` -- wire faults behave like glass faults.  A transport
  that drops every request drives the PR 5 graceful-degradation
  machinery (error streak → fallback engage → reengage probes) through
  the *same* counters and trace kinds as an in-process glass in
  ``drop`` fault mode: the AppP cannot tell the difference, by design.
* ``tcp-service`` -- the real thing.  ``eona serve infp`` runs as a
  second OS process; the AppP world reaches it over TCP, remaps its
  cause IDs into the local trace, rides out injected drops with
  retries, and streams the server's trace events back over the same
  wire.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.baselines.modes import Mode
from repro.core.appp import EonaAppP
from repro.core.infp import EonaInfP
from repro.experiments.common import (
    ExperimentResult,
    launch_video_sessions,
    loop_latency_row,
    qoe_of,
)
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.obs import spans
from repro.scenarios import build_scenario
from repro.transport.base import FaultKnobs, FaultyTransport
from repro.transport.glass import RemoteLookingGlass
from repro.transport.loopback import LoopbackTransport
from repro.transport.service import CONTROL_OWNER, GlassService, drain_trace
from repro.transport.tcp import TcpTransport
from repro.video.qoe import summarize

#: Compact flash-crowd configuration every E20 world shares (the E2
#: loop-latency sizing: small enough for CI, congested enough to hint).
WORLD = dict(
    n_clients=20,
    access_capacity_mbps=30.0,
    peak_rate_per_s=1.0,
)
HORIZON_S = 500.0

_CAUSE_FIELDS = ("cause", "parent")


def canonical_trace(
    events: Sequence[Dict[str, object]],
) -> List[str]:
    """Reduce a captured trace to comparable canonical JSONL lines.

    Drops the ``transport.*`` bookkeeping events (the wire's own
    send/recv markers -- precisely the allowed difference) and
    renumbers cause IDs to start at 1: under an outer tracer (``eona
    trace``, the bench harness) the global cause counter does not
    restart between runs, so raw IDs differ by a constant offset even
    when the causal structure is identical.
    """
    kept = [
        event
        for event in events
        if not str(event.get("kind", "")).startswith("transport.")
    ]
    ids: List[int] = []
    for event in kept:
        for field in _CAUSE_FIELDS:
            value = event.get(field)
            if isinstance(value, int):
                ids.append(value)
        for value in event.get("parents") or ():
            if isinstance(value, int):
                ids.append(value)
    remap = {old: new for new, old in enumerate(sorted(set(ids)), start=1)}
    lines = []
    for event in kept:
        norm = dict(event)
        for field in _CAUSE_FIELDS:
            value = norm.get(field)
            if isinstance(value, int):
                norm[field] = remap[value]
        if isinstance(norm.get("parents"), (list, tuple)):
            norm["parents"] = [
                remap.get(value, value) for value in norm["parents"]
            ]
        lines.append(json.dumps(norm, sort_keys=True, default=str))
    return lines


def run_equivalence(seed: int = 0, **kwargs) -> ExperimentResult:
    """The keystone gate: loopback wire == in-process, byte for byte."""
    from repro.experiments.exp_e2_flash_crowd import run_mode

    kwargs = {**WORLD, "horizon_s": HORIZON_S, **kwargs}
    result = ExperimentResult(
        name="E20-loopback-equivalence",
        notes="E2 EONA world, in-process vs codec+loopback wire",
    )

    def wire_wrap(glass):
        service = GlassService(clock=lambda: glass.sim.now)
        service.add_glass(glass)
        return RemoteLookingGlass(
            LoopbackTransport(service.handle_frame),
            owner=glass.owner,
            kind=glass.kind,
            clock=lambda: glass.sim.now,
        )

    rows = []
    for wire, wrap in (("in-process", None), ("loopback", wire_wrap)):
        with spans.capture() as events:
            row = run_mode(Mode.EONA, seed=seed, wrap_i2a=wrap, **kwargs)
        result.merge_counters(row["_counters"])  # type: ignore[arg-type]
        transport_events = sum(
            1
            for event in events
            if str(event.get("kind", "")).startswith("transport.")
        )
        trace = canonical_trace(events)
        rows.append(
            {
                "wire": wire,
                "trace_events": len(trace),
                "transport_events": transport_events,
                "buffering_ratio": row["buffering_ratio"],
                "mean_bitrate_mbps": row["mean_bitrate_mbps"],
                "_trace": trace,
            }
        )
    identical = int(rows[0]["_trace"] == rows[1]["_trace"])
    for row in rows:
        row.pop("_trace")
        result.add_row(**row, identical=identical)
    return result


def _wired_world_row(
    wire: str,
    seed: int,
    latency_s: float = 0.0,
    drop_every: int = 0,
    retries: int = 2,
    glass_fault: Optional[str] = None,
    horizon_s: float = HORIZON_S,
) -> Dict[str, object]:
    """One flash-crowd world whose AppP↔InfP loop runs over a wire.

    Server and client share one simulator (the loopback regime), so
    injected latency is *simulated* latency: the handler runs -- and
    the I2A glass stamps its hint -- at ``send + latency/2`` sim time,
    and the reply reaches the proxy's cache a half-latency later.
    ``glass_fault`` skips the wire entirely and faults the glass
    itself: the PR 5 in-process baseline the ``degraded`` variant
    compares against.
    """
    # The capture must open before the world is built: enabling the
    # tracer resets its clock binding, and ``make_context`` rebinds it
    # to the new world's simulator.
    with spans.capture() as events:
        scenario = build_scenario("flash-crowd", seed=seed, params=dict(WORLD))
        ctx = scenario.ctx
        infp = EonaInfP(
            ctx,
            access_links=[scenario.access_link],
            i2a_refresh_s=10.0,
            stats_period_s=2.0,
        )
        ctx.registry.grant("isp", "appp")
        proxy = None
        if glass_fault is not None:
            infp.i2a.set_fault_mode(glass_fault)
            isp_i2a = infp.i2a
        else:
            service = GlassService(clock=lambda: ctx.sim.now)
            service.add_glass(infp.i2a)
            if latency_s > 0:
                transport = LoopbackTransport(
                    service.handle_frame,
                    sim=ctx.sim,
                    knobs=FaultKnobs(latency_s=latency_s),
                )
            else:
                transport = LoopbackTransport(service.handle_frame)
            if drop_every:
                transport = FaultyTransport(
                    transport, FaultKnobs(drop_every=drop_every)
                )
            proxy = RemoteLookingGlass(
                transport,
                owner="isp",
                kind="i2a",
                clock=lambda: ctx.sim.now,
                retries=retries,
            )
            isp_i2a = proxy
        policy = EonaAppP(ctx, isp_i2a=isp_i2a, name="appp")
        players = launch_video_sessions(
            ctx,
            catalog=scenario.catalog,
            policy=policy,
            content_picker=lambda index: scenario.catalog.by_rank(0),
            **scenario.world.population("viewers").launch_kwargs(
                until=horizon_s * 0.6
            ),
        )
        ctx.sim.run(until=horizon_s)
        infp.stop()
        policy.stop()
    summary = summarize(qoe_of(players))
    kinds: Dict[str, int] = {}
    for event in events:
        kind = str(event["kind"])
        kinds[kind] = kinds.get(kind, 0) + 1
    row = loop_latency_row(events, wire=wire, latency_s=latency_s)
    row.update(
        buffering_ratio=summary["mean_buffering_ratio"],
        mean_bitrate_mbps=summary["mean_bitrate_mbps"],
        i2a_queries=policy.i2a_queries,
        glass_errors=policy.glass_errors,
        fallback_activations=policy.fallback_activations,
        fallback_reengagements=policy.fallback_reengagements,
        fallback_engage_events=kinds.get("fallback-engage", 0),
        fallback_reengage_events=kinds.get("fallback-reengage", 0),
        _counters=ctx.allocation_counters(),
    )
    if proxy is not None:
        row.update(proxy.stats())
    return row


def run_latency_sweep(seed: int = 0, **kwargs) -> ExperimentResult:
    """Control-loop latency as injected wire latency scales.

    With the 5 s governor tick, a hint served at ``send + λ/2`` is
    acted on at the next tick that sees it delivered, so the
    ``hint_to_action`` stage grows with λ (0 → same-tick, 2 → ~4 s,
    8 → ~6 s) -- the quantity the paper's feasibility story needs to
    stay small.
    """
    result = ExperimentResult(
        name="E20-latency-sweep",
        notes="hint→action loop stage vs injected wire latency (sim s)",
    )
    for label, latency_s in (("lat-0", 0.0), ("lat-2", 2.0), ("lat-8", 8.0)):
        result.add_row(
            **_wired_world_row(label, seed, latency_s=latency_s, **kwargs)
        )
    return result


def run_degraded(seed: int = 0, **kwargs) -> ExperimentResult:
    """Wire faults == glass faults, counter for counter.

    A transport dropping every request and an in-process glass in
    ``drop`` fault mode must walk the AppP through the identical PR 5
    degradation path: same ``glass_errors``, same single fallback
    engage, same reengage probes, same trace kinds.
    """
    result = ExperimentResult(
        name="E20-degraded",
        notes="total wire loss vs in-process glass drop fault (PR 5 parity)",
    )
    result.add_row(
        **_wired_world_row("wire-drop", seed, drop_every=1, retries=1, **kwargs)
    )
    result.add_row(
        **_wired_world_row("local-drop", seed, glass_fault="drop", **kwargs)
    )
    return result


def run_tcp_service(seed: int = 0, **kwargs) -> ExperimentResult:
    """AppP and InfP as two real OS processes, joined only by TCP."""
    from repro.experiments.service_worlds import (
        run_appp_client,
        spawn_infp_server,
        stop_server,
    )

    result = ExperimentResult(
        name="E20-tcp-service",
        notes="eona serve infp subprocess; AppP world queries it over TCP",
    )
    process, port = spawn_infp_server(
        seed=seed, time_scale=240.0, horizon_s=600.0, run_for_s=120.0
    )
    rows: List[Dict[str, object]] = []
    try:
        for wire, drop_every in (("tcp", 0), ("tcp-faulty", 3)):
            tcp = TcpTransport(port=port)
            transport = (
                FaultyTransport(tcp, FaultKnobs(drop_every=drop_every))
                if drop_every
                else tcp
            )
            proxy = RemoteLookingGlass(
                transport,
                owner="isp",
                kind="i2a",
                timeout_s=5.0,
                retries=2,
            )
            with spans.capture():
                row = run_appp_client(
                    proxy, seed=seed, horizon_s=300.0, **WORLD, **kwargs
                )
            control = RemoteLookingGlass(tcp, owner=CONTROL_OWNER, timeout_s=5.0)
            server_events, _ = drain_trace(control, requester="appp")
            tcp.close()
            row.update(
                wire=wire,
                server_trace_events=len(server_events),
                server_alive=int(process.poll() is None),
            )
            rows.append(row)
    finally:
        exit_code = stop_server(process)
    for row in rows:
        row.pop("mode", None)
        result.add_row(**row, server_exit=exit_code)
    return result


register(
    ExperimentSpec(
        exp_id="e20",
        title="live service mode: the control loop over a wire transport",
        source="DESIGN.md §14; paper §3 (planes as deployable services)",
        module=__name__,
        variants=(
            VariantSpec(
                name="loopback-equivalence",
                runner=run_equivalence,
                row_key="wire",
                checks=(
                    # The gate: modulo transport.* events, the wire run's
                    # causal trace is byte-identical to in-process.
                    check("identical", "*", "==", 1),
                    check("transport_events", "loopback", ">", 0),
                    check("transport_events", "in-process", "==", 0),
                    check("trace_events", "loopback", "==", of="in-process"),
                    check("buffering_ratio", "loopback", "==", of="in-process"),
                ),
            ),
            VariantSpec(
                name="latency-sweep",
                runner=run_latency_sweep,
                row_key="wire",
                checks=(
                    check("i2a_hints", "*", ">", 0),
                    check("hint_to_action_n", "*", ">", 0),
                    # Zero-latency wire: hints still land same control tick.
                    check("hint_to_action_p95_s", "lat-0", "<", 0.5),
                    # Injected latency stretches the loop, monotonically.
                    check("hint_to_action_p50_s", "lat-2", ">", of="lat-0"),
                    check("hint_to_action_p50_s", "lat-8", ">", of="lat-2"),
                    check("fallback_activations", "*", "==", 0),
                ),
            ),
            VariantSpec(
                name="degraded",
                runner=run_degraded,
                row_key="wire",
                checks=(
                    # Both worlds fall back exactly once and keep probing.
                    check("fallback_activations", "*", "==", 1),
                    check("fallback_engage_events", "*", "==", 1),
                    check("glass_errors", "wire-drop", "==", of="local-drop"),
                    check("i2a_queries", "wire-drop", "==", of="local-drop"),
                    check(
                        "fallback_reengagements",
                        "wire-drop",
                        "==",
                        of="local-drop",
                    ),
                    check("i2a_hints", "*", "==", 0),
                ),
            ),
            VariantSpec(
                name="tcp-service",
                runner=run_tcp_service,
                row_key="wire",
                checks=(
                    check("queries_answered", "*", ">", 0),
                    # Cross-process causes are remapped into local spans.
                    check("causes_remapped", "*", ">", 0),
                    check("glass_errors", "tcp", "==", 0),
                    check("fallback_activations", "*", "==", 0),
                    # Injected drops are absorbed by the retry path.
                    check("retries_used", "tcp-faulty", ">", 0),
                    check("server_trace_events", "*", ">", 0),
                    check("server_alive", "*", "==", 1),
                ),
            ),
        ),
    )
)
