"""Declarative experiment specs: one source of truth per claim (E1–E14).

Before this module, every experiment lived in four hand-synchronized
places: its ``exp_*`` module, the ``EXPERIMENTS`` dict in ``cli.py``, a
per-experiment bench file re-declaring the expected "shape" assertions,
and the prose in EXPERIMENTS.md.  An :class:`ExperimentSpec` collapses
the first three: the experiment module *registers* a spec naming its
variants (one per regenerated table), and the spec carries the shape
invariants as declarative :func:`check` objects.  The CLI, the pytest
bench harness, and the multiseed driver all read the same spec, so the
list of experiments and the asserted claims cannot drift apart again.

A :class:`RunArtifact` is the machine-readable record of one registry
run: seeds, wall time, allocation-engine counters, every check outcome,
and the regenerated tables, serialized as ``BENCH_<id>.json``.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.common import ExperimentResult

ARTIFACT_SCHEMA = "eona-run-artifact/2"
#: Older schemas :meth:`RunArtifact.from_dict` still reads.  ``/1``
#: artifacts lack the ``metrics`` block, which loads as empty.
COMPATIBLE_SCHEMAS = ("eona-run-artifact/1", ARTIFACT_SCHEMA)

#: How a check names the row(s) it constrains (see :meth:`ShapeCheck`):
#: a scalar is matched against the variant's ``row_key`` column, a
#: mapping against all of its items, and the strings ``"*"``,
#: ``"@first"``, ``"@last"``, ``"@min"``, ``"@max"`` select positionally
#: or by the extremum of the checked column.
RowSelector = Union[str, int, float, Mapping[str, object], None]

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_UNARY_OPS = ("truthy", "falsy")


@dataclass(frozen=True)
class CheckOutcome:
    """One evaluated check: what was asserted, and what the table said."""

    check: str
    passed: bool
    detail: str


def _select_rows(
    result: ExperimentResult,
    selector: RowSelector,
    column: str,
    row_key: str,
) -> List[Dict[str, object]]:
    rows = result.rows
    if not rows:
        return []
    if isinstance(selector, str) and selector.startswith(("@", "*")):
        if selector == "*":
            return list(rows)
        if selector == "@first":
            return [rows[0]]
        if selector == "@last":
            return [rows[-1]]
        if selector in ("@min", "@max"):
            pick = min if selector == "@min" else max
            candidates = [row for row in rows if isinstance(row.get(column), (int, float))]
            if not candidates:
                return []
            return [pick(candidates, key=lambda row: float(row[column]))]  # type: ignore[arg-type]
        raise ValueError(f"unknown row selector {selector!r}")
    if isinstance(selector, Mapping):
        return [
            row
            for row in rows
            if all(row.get(key) == value for key, value in selector.items())
        ]
    return [row for row in rows if row.get(row_key) == selector]


def _label(selector: RowSelector) -> str:
    if isinstance(selector, Mapping):
        return ",".join(f"{key}={value}" for key, value in selector.items())
    return str(selector)


@dataclass(frozen=True)
class ShapeCheck:
    """One declarative table invariant.

    Reads as: for every selected ``row``, ``row[column] <op> rhs`` where

    * without ``of``/``of_column``: ``rhs = value + plus`` (a constant);
    * with ``of_column`` only: ``rhs = value * row[of_column] + plus``
      (same-row column comparison);
    * with ``of``: ``rhs = value * ref[of_column or column] + plus``
      where ``ref`` is the single row selected by ``of``.

    ``value`` defaults to 1.0 whenever a reference is involved, so
    ``check("x", "eona", "<", of="status_quo")`` means "strictly less
    than the status-quo row's x".  The unary ops ``truthy``/``falsy``
    take no right-hand side at all.
    """

    column: str
    row: RowSelector
    op: str
    value: Optional[float] = None
    of: RowSelector = None
    of_column: Optional[str] = None
    plus: float = 0.0
    row_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS and self.op not in _UNARY_OPS:
            raise ValueError(f"unknown check op {self.op!r}")
        if self.op in _UNARY_OPS:
            if self.value is not None or self.of is not None or self.of_column:
                raise ValueError(f"{self.op} checks take no right-hand side")
        elif self.value is None and self.of is None and self.of_column is None:
            raise ValueError("comparison checks need a value, of=, or of_column=")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lhs = f"{self.column}[{_label(self.row)}]"
        if self.op in _UNARY_OPS:
            return f"{lhs} is {self.op}"
        return f"{lhs} {self.op} {self._rhs_label()}"

    def _rhs_label(self) -> str:
        factor = 1.0 if self.value is None else self.value
        if self.of is not None:
            ref = f"{self.of_column or self.column}[{_label(self.of)}]"
            term = ref if factor == 1.0 else f"{factor:g}*{ref}"
        elif self.of_column is not None:
            term = (
                self.of_column
                if factor == 1.0
                else f"{factor:g}*{self.of_column}"
            )
        else:
            term = f"{factor:g}"
        if self.plus:
            term += f"{self.plus:+g}"
        return term

    # ------------------------------------------------------------------
    def evaluate(self, result: ExperimentResult, row_key: str) -> CheckOutcome:
        key = self.row_key or row_key
        description = self.describe()
        targets = _select_rows(result, self.row, self.column, key)
        if not targets:
            return CheckOutcome(
                check=description,
                passed=False,
                detail=f"no row matching {_label(self.row)!r} in {result.name}",
            )
        reference: Optional[Dict[str, object]] = None
        if self.of is not None:
            matches = _select_rows(
                result, self.of, self.of_column or self.column, key
            )
            if len(matches) != 1:
                return CheckOutcome(
                    check=description,
                    passed=False,
                    detail=(
                        f"reference {_label(self.of)!r} matched "
                        f"{len(matches)} rows in {result.name}"
                    ),
                )
            reference = matches[0]
        details: List[str] = []
        passed = True
        for row in targets:
            ok, detail = self._evaluate_row(row, reference)
            passed = passed and ok
            details.append(detail)
        return CheckOutcome(
            check=description, passed=passed, detail="; ".join(details)
        )

    def _evaluate_row(
        self,
        row: Mapping[str, object],
        reference: Optional[Mapping[str, object]],
    ) -> Tuple[bool, str]:
        lhs = row.get(self.column)
        if self.op in _UNARY_OPS:
            ok = bool(lhs) if self.op == "truthy" else not bool(lhs)
            return ok, f"{self.column}={lhs!r}"
        if not isinstance(lhs, (int, float)) or isinstance(lhs, bool):
            return False, f"{self.column}={lhs!r} is not numeric"
        factor = 1.0 if self.value is None else self.value
        if reference is not None:
            base = reference.get(self.of_column or self.column)
        elif self.of_column is not None:
            base = row.get(self.of_column)
        else:
            base = None
        if self.of is not None or self.of_column is not None:
            if not isinstance(base, (int, float)) or isinstance(base, bool):
                return False, f"reference value {base!r} is not numeric"
            rhs = factor * float(base) + self.plus
        else:
            rhs = factor + self.plus
        ok = _COMPARATORS[self.op](float(lhs), rhs)
        return ok, f"{float(lhs):.6g} {self.op} {rhs:.6g}"


@dataclass(frozen=True)
class AnyCheck:
    """Passes when at least one of its alternatives passes."""

    alternatives: Tuple[ShapeCheck, ...]

    def describe(self) -> str:
        return " OR ".join(alt.describe() for alt in self.alternatives)

    def evaluate(self, result: ExperimentResult, row_key: str) -> CheckOutcome:
        outcomes = [alt.evaluate(result, row_key) for alt in self.alternatives]
        return CheckOutcome(
            check=self.describe(),
            passed=any(outcome.passed for outcome in outcomes),
            detail=" | ".join(outcome.detail for outcome in outcomes),
        )


Check = Union[ShapeCheck, AnyCheck]


def check(
    column: str,
    row: RowSelector,
    op: str,
    value: Optional[float] = None,
    *,
    of: RowSelector = None,
    of_column: Optional[str] = None,
    plus: float = 0.0,
    row_key: Optional[str] = None,
) -> ShapeCheck:
    """Shorthand constructor, e.g.
    ``check("buffering_ratio", "eona", "<", 0.6, of="status_quo")``."""
    return ShapeCheck(
        column=column,
        row=row,
        op=op,
        value=value,
        of=of,
        of_column=of_column,
        plus=plus,
        row_key=row_key,
    )


def any_of(*alternatives: ShapeCheck) -> AnyCheck:
    """At-least-one-of combinator for disjunctive shape claims."""
    if len(alternatives) < 2:
        raise ValueError("any_of needs at least two alternatives")
    return AnyCheck(alternatives=tuple(alternatives))


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VariantSpec:
    """One named table an experiment regenerates.

    Attributes:
        name: Variant slug, unique within the experiment
            (e.g. ``"flash-crowd"``, ``"abr-ablation"``).
        runner: ``runner(seed) -> ExperimentResult``; must bake in the
            canonical table configuration (the kwargs the committed
            ``benchmarks/results/`` tables were generated with).
        row_key: Column scalar row selectors in ``checks`` match against.
        checks: The variant's declarative shape invariants.
    """

    name: str
    runner: Callable[[int], ExperimentResult]
    row_key: str = "mode"
    checks: Tuple[Check, ...] = ()

    def run(self, seed: int) -> ExperimentResult:
        return self.runner(seed)

    def evaluate(self, result: ExperimentResult) -> List[CheckOutcome]:
        return [chk.evaluate(result, self.row_key) for chk in self.checks]


@dataclass(frozen=True)
class ExperimentSpec:
    """A whole experiment: identity, provenance, and its variants."""

    exp_id: str
    title: str
    source: str
    module: str
    variants: Tuple[VariantSpec, ...]

    def __post_init__(self) -> None:
        # Ids are ``e<digits>`` with an optional ``-slug`` suffix for
        # companion experiments that extend a numbered one (``e7-cohort``
        # rides alongside ``e7``); the digits define the sort order.
        digits, _, slug = self.exp_id[1:].partition("-")
        if not (
            self.exp_id.startswith("e")
            and digits.isdigit()
            and (not self.exp_id[1:].endswith("-"))
            and ("-" not in slug)
        ):
            raise ValueError(
                f"experiment id must look like 'e4' or 'e7-cohort', got {self.exp_id!r}"
            )
        names = [variant.name for variant in self.variants]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate variant names in {self.exp_id}: {names}")

    @property
    def order(self) -> int:
        digits, _, _ = self.exp_id[1:].partition("-")
        return int(digits)

    def variant(self, name: str) -> VariantSpec:
        for variant in self.variants:
            if variant.name == name:
                return variant
        raise KeyError(f"{self.exp_id} has no variant {name!r}")


# ---------------------------------------------------------------------------
# Run artifacts
# ---------------------------------------------------------------------------


def run_provenance() -> Dict[str, object]:
    """Environment stamp embedded in every artifact."""
    return {
        "package": "repro",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


@dataclass
class RunArtifact:
    """Machine-readable record of one registry-driven experiment run.

    Serialized as ``BENCH_<exp_id>.json`` by :meth:`save`; the missing
    machine-readable counterpart of the ``benchmarks/results/*.txt``
    tables.  ``tables`` hold the (seed-aggregated) rows actually
    printed; ``checks`` hold one outcome per spec check *per seed*, so a
    seed-robustness failure is attributable.
    """

    experiment: str
    title: str
    source: str
    module: str
    seeds: List[int]
    parallel: bool
    wall_time_s: float
    tables: List[Dict[str, object]] = field(default_factory=list)
    checks: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=run_provenance)
    schema: str = ARTIFACT_SCHEMA

    @property
    def checks_passed(self) -> bool:
        return all(entry["passed"] for entry in self.checks)

    def failed_checks(self) -> List[Dict[str, object]]:
        return [entry for entry in self.checks if not entry["passed"]]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "experiment": self.experiment,
            "title": self.title,
            "source": self.source,
            "module": self.module,
            "seeds": list(self.seeds),
            "parallel": self.parallel,
            "wall_time_s": self.wall_time_s,
            "checks_passed": self.checks_passed,
            "tables": self.tables,
            "checks": self.checks,
            "counters": self.counters,
            "metrics": self.metrics,
            "provenance": self.provenance,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunArtifact":
        schema = payload.get("schema")
        if schema not in COMPATIBLE_SCHEMAS:
            raise ValueError(
                f"unsupported artifact schema {schema!r} (want {ARTIFACT_SCHEMA!r})"
            )
        return cls(
            experiment=str(payload["experiment"]),
            title=str(payload["title"]),
            source=str(payload["source"]),
            module=str(payload["module"]),
            seeds=[int(seed) for seed in payload["seeds"]],  # type: ignore[union-attr]
            parallel=bool(payload["parallel"]),
            wall_time_s=float(payload["wall_time_s"]),  # type: ignore[arg-type]
            tables=list(payload["tables"]),  # type: ignore[arg-type]
            checks=list(payload["checks"]),  # type: ignore[arg-type]
            counters=dict(payload["counters"]),  # type: ignore[arg-type]
            metrics=dict(payload.get("metrics") or {}),  # type: ignore[arg-type]
            provenance=dict(payload["provenance"]),  # type: ignore[arg-type]
            schema=str(schema),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        return cls.from_dict(json.loads(text))

    def save(self, directory: str) -> str:
        """Write ``BENCH_<exp_id>.json`` under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.experiment}.json")
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path


def seeds_arg(spec: str) -> List[int]:
    """Parse a seed list: ``"0..9"``, ``"0,1,5"``, or a mix of both."""
    seeds: List[int] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if ".." in token:
            start_text, _, stop_text = token.partition("..")
            start, stop = int(start_text), int(stop_text)
            if stop < start:
                raise ValueError(f"empty seed range {token!r}")
            seeds.extend(range(start, stop + 1))
        else:
            seeds.append(int(token))
    if not seeds:
        raise ValueError(f"no seeds in {spec!r}")
    return seeds
