"""E7 -- Scalability of the A2I analytics path (paper §5).

"A typical AppP can collect user experience for tens of millions of
sessions each day" -- the InfP-side control logic must digest that.
This experiment measures the windowed group-by pipeline's throughput
(records/second of wall clock) and state size as the attribute
cardinality and window length grow, plus the max-min allocator's cost
versus concurrent flow count (the simulator's own scalability).

Expected shape: aggregation throughput is flat in window length and
degrades slowly with group cardinality (hash-grouping, O(1) per
record); allocator cost grows superlinearly but stays comfortably fast
at laptop scale.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.network.flows import Flow
from repro.network.maxmin import max_min_allocation
from repro.network.topology import NodeKind, Topology
from repro.obs.profile import wall_clock
from repro.telemetry.aggregate import GroupByAggregator
from repro.telemetry.records import SessionRecord


def _synthetic_records(
    n_records: int,
    n_cdns: int,
    n_isps: int,
    window_span_s: float,
) -> List[SessionRecord]:
    records = []
    for index in range(n_records):
        records.append(
            SessionRecord(
                time=(index / n_records) * window_span_s,
                attrs={
                    "cdn": f"cdn{index % n_cdns}",
                    "isp": f"isp{(index // n_cdns) % n_isps}",
                },
                metrics={
                    "buffering_ratio": (index % 97) / 970.0,
                    "mean_bitrate_mbps": 0.4 + (index % 13) * 0.4,
                },
            )
        )
    return records


def measure_aggregation(
    n_records: int = 200_000,
    n_cdns: int = 4,
    n_isps: int = 50,
    window_s: float = 60.0,
    span_s: float = 3600.0,
) -> Dict[str, object]:
    """Throughput and state of one aggregation configuration."""
    records = _synthetic_records(n_records, n_cdns, n_isps, span_s)
    aggregator = GroupByAggregator(
        window_s=window_s,
        group_keys=("cdn", "isp"),
        metrics=("buffering_ratio", "mean_bitrate_mbps"),
    )
    start = wall_clock()
    for record in records:
        aggregator.add(record)
    aggregator.flush()
    elapsed = wall_clock() - start
    return {
        "n_records": n_records,
        "cardinality": n_cdns * n_isps,
        "window_s": window_s,
        "records_per_sec": n_records / elapsed if elapsed > 0 else math.inf,
        "rows_emitted": aggregator.rows_emitted,
        "wall_s": elapsed,
    }


def measure_allocator(n_flows: int, n_links: int = 50) -> Dict[str, object]:
    """Max-min allocation cost at a given flow count."""
    topo = Topology("alloc-bench")
    topo.add_node("src", NodeKind.SERVER)
    topo.add_node("dst", NodeKind.CLIENT)
    links = []
    previous = "src"
    for index in range(n_links):
        node = f"r{index}"
        topo.add_node(node)
        links.append(topo.add_link(previous, node, capacity_mbps=1000.0))
        previous = node
    links.append(topo.add_link(previous, "dst", capacity_mbps=1000.0))

    flows = []
    for index in range(n_flows):
        # Each flow crosses a contiguous slice of the chain, so links
        # carry overlapping but distinct flow sets (the hard case).
        start_index = index % max(1, n_links - 5)
        path = links[start_index : start_index + 5]
        flows.append(
            Flow(
                flow_id=f"f{index}",
                src="src",
                dst="dst",
                path=path,
                demand_mbps=5.0 + (index % 7),
            )
        )
    start = wall_clock()
    rates = max_min_allocation(flows)
    elapsed = wall_clock() - start
    return {
        "n_flows": n_flows,
        "n_links": n_links,
        "alloc_wall_ms": elapsed * 1000.0,
        "allocated": len(rates),
    }


def run(
    record_counts: Tuple[int, ...] = (50_000, 200_000),
    cardinalities: Tuple[int, ...] = (8, 200, 2000),
    flow_counts: Tuple[int, ...] = (100, 1000, 5000),
) -> ExperimentResult:
    result = ExperimentResult(
        name="E7-scalability",
        notes="A2I aggregation throughput and allocator cost",
    )
    for n_records in record_counts:
        for cardinality in cardinalities:
            n_isps = max(1, cardinality // 4)
            row = measure_aggregation(
                n_records=n_records, n_cdns=4, n_isps=n_isps
            )
            row["kind"] = "aggregation"
            result.add_row(**row)
    for n_flows in flow_counts:
        row = measure_allocator(n_flows)
        row["kind"] = "allocator"
        result.add_row(**row)
    return result


def run_aggregation_table(
    seed: int = 0,
    cardinalities: Tuple[int, ...] = (8, 200, 2000),
    n_records: int = 100_000,
) -> ExperimentResult:
    """The canonical E7-aggregation sweep (the seed is unused: the
    workload is synthetic and deterministic; only wall clock varies)."""
    del seed
    result = ExperimentResult(
        name="E7-aggregation",
        notes="windowed group-by throughput vs. attribute cardinality",
    )
    for cardinality in cardinalities:
        result.add_row(
            **measure_aggregation(
                n_records=n_records, n_cdns=4, n_isps=max(1, cardinality // 4)
            )
        )
    return result


def run_allocator_table(
    seed: int = 0,
    flow_counts: Tuple[int, ...] = (100, 1000, 5000),
) -> ExperimentResult:
    """The canonical E7-allocator sweep (seed unused, as above)."""
    del seed
    result = ExperimentResult(
        name="E7-allocator",
        notes="max-min allocation cost vs. concurrent flows (50-link chain)",
    )
    for n_flows in flow_counts:
        result.add_row(**measure_allocator(n_flows))
    return result


register(
    ExperimentSpec(
        exp_id="e7",
        title="A2I analytics and allocator scalability (§5)",
        source="paper §5 scalability",
        module=__name__,
        variants=(
            VariantSpec(
                name="aggregation",
                runner=run_aggregation_table,
                row_key="cardinality",
                checks=(
                    # Hash-grouping: sublinear degradation in cardinality,
                    # and laptop-scale throughput well past the paper's
                    # "tens of millions of sessions each day".
                    check("records_per_sec", "@min", ">", 0.1, of="@max"),
                    check("records_per_sec", "@min", ">", 30_000),
                ),
            ),
            VariantSpec(
                name="allocator",
                runner=run_allocator_table,
                row_key="n_flows",
                checks=(
                    check("allocated", "*", "==", of_column="n_flows"),
                    check("alloc_wall_ms", "@last", "<", 1000.0),
                ),
            ),
        ),
    )
)
