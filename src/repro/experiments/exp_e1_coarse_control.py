"""E1 -- "Coarse control" (paper §2, first bullet; Figure 1(b)).

A server inside CDN X degrades.  The status-quo player's only recourse
is a whole-CDN switch to cold-cache CDN Y, whose every chunk then pulls
through a narrow origin uplink.  With EONA-I2A server hints, the player
switches to CDN X's healthy sibling server and keeps hitting warm
caches.

Expected shape: EONA keeps the cache hit rate near the warm level,
cuts rebuffering for the affected sessions by a clear factor, and CDN X
retains (nearly) all the traffic.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.modes import Mode
from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.infp import make_cdn_i2a
from repro.experiments.common import ExperimentResult, launch_video_sessions, qoe_of
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.video.qoe import summarize
from repro.scenarios import build_scenario


def run_mode(
    mode: Mode,
    seed: int = 0,
    n_clients: int = 20,
    n_sessions: int = 30,
    horizon_s: float = 700.0,
) -> Dict[str, object]:
    """Run one world under ``mode`` and return its metric row."""
    scenario = build_scenario(
        "coarse-control", seed=seed, params={"n_clients": n_clients}
    )
    sim = scenario.sim
    registry = scenario.registry

    if mode is Mode.EONA:
        cdn_i2a = {
            scenario.cdn_x.name: make_cdn_i2a(sim, scenario.cdn_x, registry),
            scenario.cdn_y.name: make_cdn_i2a(sim, scenario.cdn_y, registry),
        }
        policy = EonaAppP(
            sim, scenario.cdns, cdn_i2a=cdn_i2a, name="appp", isp="isp"
        )
        registry.grant(scenario.cdn_x.name, "appp")
        registry.grant(scenario.cdn_y.name, "appp")
    elif mode is Mode.STATUS_QUO:
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp", isp="isp")
    else:
        raise ValueError(f"E1 compares STATUS_QUO and EONA, not {mode}")

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=0.4,
        max_sessions=n_sessions,
    )
    sim.run(until=horizon_s)

    qoes = qoe_of(players)
    summary = summarize(qoes)
    ended_on_x = sum(
        1
        for player in players
        if player.cdn is not None and player.cdn.name == scenario.cdn_x.name
    )
    return {
        "mode": mode.value,
        "sessions": len(players),
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "rebuffer_events": summary["rebuffer_events_per_session"],
        "cdn_switches": summary["cdn_switches_per_session"],
        "server_switches": sum(q.server_switches for q in qoes) / max(1, len(qoes)),
        "cache_hit_rate_x": scenario.cdn_x.cache_hit_rate(),
        "traffic_retained_by_x": ended_on_x / max(1, len(players)),
        "origin_y_fetches": scenario.cdn_y.origin.fetches,
        "engagement": summary["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    """Compare status quo vs. EONA in the coarse-control world."""
    result = ExperimentResult(
        name="E1-coarse-control",
        notes="degraded server in warm CDN X; cold CDN Y behind narrow origin",
    )
    for mode in (Mode.STATUS_QUO, Mode.EONA):
        result.add_row(**run_mode(mode, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e1",
        title="coarse control: bad server, intra-CDN switch vs CDN switch (§2)",
        source="paper §2, first bullet; Figure 1(b)",
        module=__name__,
        variants=(
            VariantSpec(
                name="coarse-control",
                runner=run,
                checks=(
                    check("traffic_retained_by_x", "eona", ">", of="status_quo"),
                    check("cdn_switches", "eona", "==", 0),
                    check("origin_y_fetches", "eona", "==", 0),
                    check("mean_bitrate_mbps", "eona", ">", of="status_quo"),
                ),
            ),
        ),
    )
)
