"""E18 -- IoT beacon flood, driven vectorized (fleet workload).

The ``iot-beacons`` spec declares a 64-device cohort chirping small
payloads through a narrow gateway uplink.  Its population is
*cohort-mode*: the spec's per-device rates feed the fluid-cohort
engine's batched-Poisson arrivals instead of per-session simulator
events, and the resulting beacons stream through a
:class:`~repro.telemetry.aggregate.GroupByAggregator` exactly as a
telemetry pipeline would consume them.  The check is conservation: the
vectorized path must produce the declared arrival volume (Poisson
around devices x rate x horizon) and complete the deliveries.
"""

from __future__ import annotations

from typing import Dict

from repro.cohorts.engine import CohortEngine
from repro.cohorts.specs import WEB, CohortSpec
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.scenarios import build_scenario
from repro.telemetry.aggregate import GroupByAggregator

#: Beacon payload, Mbit.  Tiny on purpose: the flood is event volume,
#: not bytes, which is what makes the cohort path the right tool.
BEACON_MBIT = 0.2


def run_flood(seed: int = 0, horizon_s: float = 300.0) -> Dict[str, object]:
    world = build_scenario("iot-beacons", seed=seed)
    population = world.population("beacons")
    rates = population.device_rates()
    specs = [
        CohortSpec(
            node=node,
            cdn="collector",
            tier="beacon",
            device="sensor",
            src_node="collector",
            arrival_rate_per_s=rate,
            kind=WEB,
            isp="isp",
            page_mbit=BEACON_MBIT,
            burst_demand_mbps=1.0,
        )
        for node, rate in zip(population.nodes, rates)
    ]
    aggregator = GroupByAggregator(
        window_s=60.0,
        group_keys=("cdn", "isp"),
        metrics=("plt_s", "total_mbit"),
    )
    engine = CohortEngine(
        world.ctx,
        specs,
        dt_s=1.0,
        beacon_sink=lambda record, sessions: aggregator.add(record, weight=sessions),
        until=horizon_s,
    )
    engine.start()
    world.sim.run(until=horizon_s + 1.0)
    aggregator.flush()

    expected = sum(rates) * horizon_s
    arrivals = engine.counters["cohort.arrivals"]
    return {
        "config": "flood",
        "n_devices": len(specs),
        "expected_arrivals": expected,
        "arrivals": arrivals,
        "arrivals_rel_error": abs(arrivals - expected) / expected,
        "completed": engine.counters["cohort.completed"],
        "beacons": engine.counters["cohort.beacons"],
        "aggregate_rows": aggregator.rows_emitted,
        "peak_concurrent": engine.gauges["cohort.peak_concurrent_sessions"],
        "_counters": world.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E18-iot-beacons",
        notes="cohort-mode population: batched-Poisson beacon flood + group-by",
    )
    result.add_row(**run_flood(seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e18",
        title="IoT beacon flood via cohort-mode population (fleet workload)",
        source="declarative scenario 'iot-beacons'",
        module=__name__,
        variants=(
            VariantSpec(
                name="flood",
                runner=run,
                row_key="config",
                checks=(
                    # Arrival conservation: the vectorized path realizes
                    # the declared per-device rates (Poisson, so ~3 sigma).
                    check("arrivals_rel_error", "flood", "<", 0.12),
                    check("completed", "flood", ">", 0),
                    check("beacons", "flood", ">", 0),
                    check("aggregate_rows", "flood", ">", 0),
                ),
            ),
        ),
    )
)
