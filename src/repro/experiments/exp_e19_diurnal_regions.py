"""E19 -- Diurnal load across two time-shifted regions (fleet workload).

The ``diurnal-regions`` spec declares two regional populations on one
CDN whose arrival curves are the same diurnal shape, peaks shifted a
third of a (compressed) day apart.  The experiment launches both
declared populations, samples per-region concurrency on a timeline
probe, and verifies the declared timelines materialize: each region
peaks near its declared ``peak_at_s``, and during one region's peak
window it carries more sessions than the other -- the counter-phased
load shape behind follow-the-sun capacity planning.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.appp import StatusQuoAppP
from repro.experiments.common import ExperimentResult, launch_video_sessions
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.scenarios import build_scenario
from repro.telemetry.timeline import TimelineProbe


def run_day(seed: int = 0) -> List[Dict[str, object]]:
    world = build_scenario("diurnal-regions", seed=seed)
    sim = world.sim
    day_s = world.params["day_s"]
    policy = StatusQuoAppP(sim, world.cdn_list, name="appp")

    active: Dict[str, List] = {"east": [], "west": []}
    for region in ("east", "west"):
        players = launch_video_sessions(
            world.ctx,
            catalog=world.catalog,
            policy=policy,
            session_prefix=f"{region}-s",
            **world.population(f"{region}-viewers").launch_kwargs(until=day_s),
        )
        active[region] = players

    def concurrency(region: str) -> float:
        return float(
            sum(
                1
                for player in active[region]
                if player.started_at is not None and not player.ended
            )
        )

    probe = TimelineProbe(
        sim,
        {
            "east": lambda: concurrency("east"),
            "west": lambda: concurrency("west"),
        },
        period_s=10.0,
    )
    sim.run(until=day_s)
    probe.stop()

    rows = []
    for region, declared_peak in (
        ("east", world.params["east_peak_at_s"]),
        ("west", world.params["west_peak_at_s"]),
    ):
        series = probe.series(region)
        times = [sample.time for sample in probe.samples]
        peak_index = max(range(len(series)), key=series.__getitem__)
        own_window = probe.window_mean(region, declared_peak - 60.0, declared_peak + 60.0)
        other = "west" if region == "east" else "east"
        other_window = probe.window_mean(other, declared_peak - 60.0, declared_peak + 60.0)
        rows.append(
            {
                "region": region,
                "sessions": len(active[region]),
                "declared_peak_s": declared_peak,
                "observed_peak_s": times[peak_index],
                "peak_error_s": abs(times[peak_index] - declared_peak),
                "own_mean_at_peak": own_window,
                "other_mean_at_peak": other_window,
                "_counters": world.ctx.allocation_counters(),
            }
        )
    return rows


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E19-diurnal-regions",
        notes="two declared diurnal populations, peaks a third of a day apart",
    )
    for row in run_day(seed=seed, **kwargs):
        result.add_row(**row)
    return result


register(
    ExperimentSpec(
        exp_id="e19",
        title="diurnal multi-region load, phase-shifted peaks (fleet workload)",
        source="declarative scenario 'diurnal-regions'",
        module=__name__,
        variants=(
            VariantSpec(
                name="counter-phase",
                runner=run,
                row_key="region",
                checks=(
                    check("sessions", "east", ">", 20),
                    check("sessions", "west", ">", 20),
                    # Each region's declared peak window is its own busy
                    # hour: it out-carries the counter-phased region.
                    check("own_mean_at_peak", "east", ">", of="east",
                          of_column="other_mean_at_peak"),
                    check("own_mean_at_peak", "west", ">", of="west",
                          of_column="other_mean_at_peak"),
                    # The observed peak lands near the declared one
                    # (within a sixth of the compressed day).
                    check("peak_error_s", "east", "<", 100.0),
                    check("peak_error_s", "west", "<", 100.0),
                ),
            ),
        ),
    )
)
