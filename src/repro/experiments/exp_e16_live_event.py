"""E16 -- Live-event flash crowd with a regional failover (fleet workload).

First of the declarative-scenario fleet: the whole world -- topology,
audience arrival curve, phase timeline, and the east-site outage -- is
the committed ``live-event`` spec under ``scenarios/library``; this
module only attaches the control logic under test and reads the story
back out.  A kickoff-shaped crowd ramps onto two regional CDN sites,
then the east site's uplink collapses mid-peak (the spec's
``east-uplink-outage`` plan, armed through the fault injector at build
time) and recovers before the decay.

Compared configs mirror E13: **reactive** per-session trial-and-error
vs the **coordinated** fleet control plane.  Expected shape: the
coordinated plane evacuates the east site during the outage window far
more completely than per-session reaction does.
"""

from __future__ import annotations

from typing import Dict

from repro.core.appp import StatusQuoAppP
from repro.core.controlplane import CoordinatedAppP
from repro.experiments.common import (
    ExperimentResult,
    launch_video_sessions,
    loop_latency_row,
)
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.scenarios import build_scenario
from repro.telemetry.timeline import TimelineProbe
from repro.video.qoe import summarize


def run_config(
    config: str,
    seed: int = 0,
    horizon_s: float = 450.0,
) -> Dict[str, object]:
    world = build_scenario("live-event", seed=seed)
    sim = world.sim
    cdns = world.cdn_list

    if config == "reactive":
        policy = StatusQuoAppP(sim, cdns, name="appp")
    elif config == "coordinated":
        policy = CoordinatedAppP(sim, cdns, control_period_s=10.0, name="appp")
    else:
        raise ValueError(f"unknown config {config!r}")

    audience = world.population("audience")
    players = launch_video_sessions(
        world.ctx,
        catalog=world.catalog,
        policy=policy,
        **audience.launch_kwargs(until=horizon_s - 100.0),
    )
    probe = TimelineProbe(
        sim,
        {
            "east_sessions": lambda: float(world.cdns["cdn-east"].active_sessions),
            "west_sessions": lambda: float(world.cdns["cdn-west"].active_sessions),
        },
        period_s=10.0,
    )
    sim.run(until=horizon_s)
    probe.stop()
    if hasattr(policy, "stop"):
        policy.stop()

    fault_at = world.params["fault_at_s"]
    recover_at = world.params["recover_at_s"]
    east_during = probe.window_mean("east_sessions", fault_at + 60.0, recover_at)
    west_during = probe.window_mean("west_sessions", fault_at + 60.0, recover_at)
    total_during = east_during + west_during
    qoe = [player.qoe() for player in players if player.started_at is not None]
    summary = summarize(qoe)
    return {
        "config": config,
        "sessions": len(qoe),
        "east_share_during_outage": (
            east_during / total_during if total_during > 0 else 0.0
        ),
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "engagement": summary["mean_engagement"],
        "migrations": getattr(policy, "migrations", 0),
        "_counters": world.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E16-live-event",
        notes="declarative live-event spec: flash crowd + east-site outage",
    )
    for config in ("reactive", "coordinated"):
        result.add_row(**run_config(config, seed=seed, **kwargs))
    return result


def run_loop_latency(seed: int = 0, **kwargs) -> ExperimentResult:
    """Action→recovery spans of the live-event failover (DESIGN.md §13).

    Like E13, the coordinated plane is app-internal: no I2A hints, so
    the trace must show beacon→flush and action→recovery chains only.
    """
    from repro.obs import spans

    result = ExperimentResult(
        name="E16-loop-latency",
        notes="causal loop stages (sim s) from captured spans; DESIGN.md §13",
    )
    for config in ("reactive", "coordinated"):
        with spans.capture() as events:
            row = run_config(config, seed=seed, **kwargs)
        result.merge_counters(row["_counters"])  # type: ignore[arg-type]
        result.add_row(**loop_latency_row(events, config=config))
    return result


register(
    ExperimentSpec(
        exp_id="e16",
        title="live-event flash crowd with regional failover (fleet workload)",
        source="declarative scenario 'live-event'; control plane per §1 trend 3",
        module=__name__,
        variants=(
            VariantSpec(
                name="failover",
                runner=run,
                row_key="config",
                checks=(
                    # Fleet steering evacuates the failed east site.
                    check("east_share_during_outage", "coordinated", "<", of="reactive"),
                    check("east_share_during_outage", "coordinated", "<", 0.35),
                    check("migrations", "coordinated", ">", 0),
                    check("sessions", "reactive", ">", 10),
                ),
            ),
            VariantSpec(
                name="loop-latency",
                runner=run_loop_latency,
                row_key="config",
                checks=(
                    check("beacon_to_flush_n", "*", ">", 0),
                    check("i2a_hints", "*", "==", 0),
                    check("hint_to_action_n", "*", "==", 0),
                    # The coordinated plane's migrations are traced
                    # actions whose sessions then recover.
                    check("action_to_recovery_n", "coordinated", ">", 0),
                ),
            ),
        ),
    )
)
