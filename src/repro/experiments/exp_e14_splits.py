"""E14 -- Traffic splits across peering points (§4's third knob).

The recipe's hypothetical global controller tunes "the traffic splits
across the peering points for each CDN".  This experiment sizes the
Figure 5 world so that *no single peering* fits CDN X's demand
(B = 50, C = 55, demand ≈ 90 Mbit/s): any single-egress policy must
congest whichever peering it picks, and only a split can deliver the
full demand.

Expected shape: single-egress EONA placement saturates one peering and
players adapt bitrate down; split-capable EONA spreads the load,
keeping both peerings below saturation and bitrate high.
"""

from __future__ import annotations

from typing import Dict

from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments.common import ExperimentResult, launch_video_sessions, qoe_of
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, any_of, check
from repro.video.qoe import summarize
from repro.scenarios import build_scenario


def run_config(
    config: str,
    seed: int = 0,
    n_clients: int = 30,
    peering_b_mbps: float = 50.0,
    peering_c_mbps: float = 55.0,
    horizon_s: float = 900.0,
) -> Dict[str, object]:
    """``config``: 'status_quo', 'eona_single', or 'eona_split'."""
    scenario = build_scenario(
        "oscillation",
        seed=seed,
        params={
            "n_clients": n_clients,
            "peering_b_mbps": peering_b_mbps,
            "peering_c_mbps": peering_c_mbps,
            "cdn_y_uplink_mbps": 10.0,  # Y is a non-option; this is about X's split
        },
    )
    sim = scenario.sim
    registry = scenario.registry

    if config == "status_quo":
        infp = StatusQuoInfP(
            sim, scenario.network, scenario.groups, te_period_s=45.0,
            stats_period_s=5.0,
        )
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")
    elif config in ("eona_single", "eona_split"):
        policy = EonaAppP(sim, scenario.cdns, name="appp")
        a2i = policy.make_a2i(registry, refresh_period_s=10.0)
        registry.grant("appp", "isp")
        infp = EonaInfP(
            sim,
            scenario.network,
            scenario.groups,
            registry=registry,
            appp_a2i=a2i,
            te_period_s=45.0,
            stats_period_s=5.0,
            use_splits=(config == "eona_split"),
        )
        registry.grant("isp", "appp")
        policy.isp_i2a = infp.i2a
    else:
        raise ValueError(f"unknown config {config!r}")

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=n_clients / 180.0,
        until=horizon_s - 200.0,
    )
    probe: Dict[str, object] = {}

    def take_probe() -> None:
        scenario.network.sync()
        probe["b_util"] = scenario.network.link_utilization(scenario.peering_b_link)
        probe["c_util"] = scenario.network.link_utilization(scenario.peering_c_link)
        probe["split_active"] = (
            scenario.network.split_policy("cdnX") is not None
        )

    sim.schedule_at(horizon_s * 0.6, take_probe)
    sim.run(until=horizon_s)
    infp.stop()
    if hasattr(policy, "stop"):
        policy.stop()

    summary = summarize(qoe_of(players))
    return {
        "config": config,
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "peerB_util_loaded": probe.get("b_util", 0.0),
        "peerC_util_loaded": probe.get("c_util", 0.0),
        "split_active": bool(probe.get("split_active", False)),
        "engagement": summary["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E14-splits",
        notes="demand exceeds every single peering; only a split fits",
    )
    for config in ("status_quo", "eona_single", "eona_split"):
        result.add_row(**run_config(config, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e14",
        title="traffic splits across peering points when no single egress fits (§4)",
        source="paper §4 recipe, third knob",
        module=__name__,
        variants=(
            VariantSpec(
                name="splits",
                runner=run,
                row_key="config",
                checks=(
                    check("split_active", "eona_split", "truthy"),
                    check(
                        "mean_bitrate_mbps",
                        "eona_split",
                        ">",
                        1.5,
                        of="eona_single",
                    ),
                    check("peerB_util_loaded", "eona_split", ">", 0.5),
                    check("peerC_util_loaded", "eona_split", ">", 0.5),
                    # Single-egress placement strands one peering or the other.
                    any_of(
                        check("peerB_util_loaded", "eona_single", "<", 0.5),
                        check("peerC_util_loaded", "eona_single", "<", 0.5),
                    ),
                    check("engagement", "eona_split", ">", of="eona_single"),
                ),
            ),
        ),
    )
)
