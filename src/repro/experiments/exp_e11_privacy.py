"""E11 -- Privacy blinding vs. effectiveness (paper §4, open question 2).

"In order that necessary information is shared while preserving privacy
concerns, one can think of using standard techniques such as
aggregation or other types of blinding" -- but how much blinding can
the control loops take?  This experiment runs the Figure 5 world with
Laplace noise injected into the A2I demand estimate at the export
boundary, sweeping the privacy budget ε, and measures whether the
EONA TE placement still converges to the green path.

Expected shape: at generous ε (light noise) full EONA behaviour
survives; as ε shrinks the demand signal drowns and TE decisions start
to wobble or mis-place -- the effectiveness/minimality frontier of §4
made quantitative.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.core.appp import EonaAppP
from repro.core.infp import EonaInfP
from repro.core.interfaces import QueryResult
from repro.core.privacy import noise_numeric_fields
from repro.experiments.common import ExperimentResult, launch_video_sessions, qoe_of
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.video.qoe import summarize
from repro.scenarios import build_scenario


class NoisedGlass:
    """Wraps a looking glass, noising demand answers at the boundary.

    This models the AppP applying differential-privacy-style blinding
    *before* the data leaves its domain (per McSherry & Mahajan, which
    the paper cites): the InfP only ever sees the noised values.
    """

    def __init__(self, inner, epsilon: float, sensitivity: float, rng: random.Random):
        self.inner = inner
        self.epsilon = epsilon
        self.sensitivity = sensitivity
        self.rng = rng
        self.noised_queries = 0

    def query(self, requester: str, query: str, **params) -> QueryResult:
        result = self.inner.query(requester, query, **params)
        if query != "demand_estimate":
            return result
        self.noised_queries += 1
        payload = noise_numeric_fields(
            result.payload,
            epsilon=self.epsilon,
            sensitivity=self.sensitivity,
            rng=self.rng,
            fields=("demand_mbps",),
        )
        # The nested demand dict itself holds the numeric leaves.
        if isinstance(payload, dict) and "demand_mbps" in payload:
            noised = {
                cdn: max(0.0, value)
                for cdn, value in payload["demand_mbps"].items()
            }
            payload = dict(payload, demand_mbps=noised)
        return QueryResult(query=result.query, payload=payload, age_s=result.age_s)


def run_epsilon(
    epsilon: float,
    seed: int = 0,
    n_clients: int = 24,
    horizon_s: float = 1000.0,
    sensitivity_mbps: float = 6.0,
) -> Dict[str, object]:
    """One Figure 5 run with demand noised at privacy budget ε."""
    scenario = build_scenario(
        "oscillation", seed=seed, params={"n_clients": n_clients}
    )
    sim = scenario.sim
    registry = scenario.registry

    policy = EonaAppP(sim, scenario.cdns, name="appp")
    a2i = policy.make_a2i(registry, refresh_period_s=10.0)
    registry.grant("appp", "isp")
    noised = NoisedGlass(
        a2i, epsilon=epsilon, sensitivity=sensitivity_mbps,
        rng=sim.rng.get("privacy"),
    )
    infp = EonaInfP(
        sim,
        scenario.network,
        scenario.groups,
        registry=registry,
        appp_a2i=noised,
        te_period_s=60.0,
        stats_period_s=5.0,
    )
    registry.grant("isp", "appp")
    policy.isp_i2a = infp.i2a

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=n_clients / 180.0,
        until=horizon_s - 200.0,
    )
    probe: Dict[str, object] = {}
    sim.schedule_at(
        horizon_s * 0.7,
        lambda: probe.__setitem__("selection", infp.te.selection("cdnX")),
    )
    sim.run(until=horizon_s)
    infp.stop()
    policy.stop()

    summary = summarize(qoe_of(players))
    return {
        "epsilon": epsilon,
        "te_switches": infp.te.switch_count("cdnX"),
        "on_green_path": probe.get("selection") == "peerC",
        "buffering_ratio": summary["mean_buffering_ratio"],
        "engagement": summary["mean_engagement"],
        "noised_queries": noised.noised_queries,
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(
    seed: int = 0,
    epsilons: Tuple[float, ...] = (10.0, 1.0, 0.1, 0.01),
    **kwargs,
) -> ExperimentResult:
    result = ExperimentResult(
        name="E11-privacy",
        notes="Figure 5 world with Laplace-noised A2I demand; ε sweep",
    )
    for epsilon in epsilons:
        result.add_row(**run_epsilon(epsilon, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e11",
        title="privacy blinding (Laplace noise on A2I demand) vs effectiveness (§4)",
        source="paper §4 open question 2",
        module=__name__,
        variants=(
            VariantSpec(
                name="privacy",
                runner=lambda seed: run(seed=seed, epsilons=(10.0, 1.0, 0.1, 0.02)),
                row_key="epsilon",
                checks=(
                    # Light blinding preserves full EONA behaviour...
                    check("te_switches", 1.0, "<=", 3),
                    check("on_green_path", 1.0, "truthy"),
                    # ...heavy blinding drowns the signal and churn returns.
                    check("te_switches", 0.02, ">", of=1.0),
                    check("buffering_ratio", 0.02, ">", of=1.0),
                ),
            ),
        ),
    )
)
