"""E10 -- New oscillations from tighter coupling (paper §5).

Two findings, both anticipated by the paper:

1. **Full EONA is stable across timescales**: with demand-aware TE and
   published decisions, speeding the TE loop up to player timescales
   does not reintroduce oscillation (``run_full``).
2. **Partial deployments can churn**: an EONA-instrumented AppP (it
   receives the congestion signal, but no peering visibility) coupled
   to a legacy greedy ISP reacts to every TE flap; the faster the ISP
   loop, the more the AppP chases it.  Hysteresis damping on the AppP's
   CDN knob suppresses the churn (``run_partial`` ablates it).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.modes import Mode
from repro.core.appp import EonaAppP
from repro.core.damping import HysteresisGate
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments import exp_e4_oscillation
from repro.experiments.common import ExperimentResult, launch_video_sessions, qoe_of
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.video.qoe import summarize
from repro.scenarios import build_scenario


def run_partial_mode(
    te_period_s: float,
    with_damping: bool,
    seed: int = 0,
    n_clients: int = 24,
    horizon_s: float = 1200.0,
) -> Dict[str, object]:
    """Legacy greedy ISP + congestion-signal-only EONA AppP."""
    scenario = build_scenario(
        "oscillation", seed=seed, params={"n_clients": n_clients}
    )
    sim = scenario.sim
    registry = scenario.registry

    infp = StatusQuoInfP(
        sim, scenario.network, scenario.groups,
        te_period_s=te_period_s, stats_period_s=5.0,
    )
    damper = (
        HysteresisGate(sim, min_dwell_s=180.0, improvement_margin=0.1)
        if with_damping
        else None
    )
    # A twitchy player-side loop (react after 2 bad chunks) makes the
    # coupling visible; damping is what keeps it in check.
    policy = EonaAppP(
        sim, scenario.cdns, name="appp", damper=damper, bad_chunk_threshold=2
    )
    # Partial I2A: the AppP may ask about congestion but NOT about
    # peering state, so it cannot tell "the ISP is fixing this" from
    # "the CDN is broken" -- the coupling channel.
    eona_isp = EonaInfP(
        sim, scenario.network, [], registry=registry, stats_period_s=5.0
    )
    registry.grant("isp", "appp", "congestion")
    policy.isp_i2a = eona_isp.i2a

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=n_clients / 180.0,
        until=horizon_s - 200.0,
    )
    sim.run(until=horizon_s)
    infp.stop()
    eona_isp.stop()
    policy.stop()

    summary = summarize(qoe_of(players))
    return {
        "te_period_s": te_period_s,
        "damping": "on" if with_damping else "off",
        "te_switches": infp.te.switch_count("cdnX"),
        "cdn_switches": summary["cdn_switches_per_session"],
        "buffering_ratio": summary["mean_buffering_ratio"],
        "engagement": summary["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run_partial(
    seed: int = 0,
    te_periods: Tuple[float, ...] = (15.0, 45.0, 120.0),
    **kwargs,
) -> ExperimentResult:
    result = ExperimentResult(
        name="E10-partial-coupling",
        notes="legacy greedy ISP + partially-informed AppP; damping ablation",
    )
    for period in te_periods:
        for with_damping in (False, True):
            result.add_row(**run_partial_mode(period, with_damping, seed=seed, **kwargs))
    return result


def run_full(
    seed: int = 0,
    te_periods: Tuple[float, ...] = (10.0, 60.0, 180.0),
    i2a_refresh_s: float = 20.0,
    **kwargs,
) -> ExperimentResult:
    """Full EONA stays stable as the TE loop accelerates."""
    result = ExperimentResult(
        name="E10-full-eona",
        notes=f"full EONA, TE period swept at {i2a_refresh_s:.0f}s snapshot age",
    )
    for period in te_periods:
        row = exp_e4_oscillation.run_mode(
            Mode.EONA,
            seed=seed,
            te_period_s=period,
            i2a_refresh_s=i2a_refresh_s,
            **kwargs,
        )
        result.add_row(
            te_period_s=period,
            te_switches=row["te_switches"],
            cdn_switches=row["cdn_switches"],
            buffering_ratio=row["buffering_ratio"],
            engagement=row["engagement"],
            _counters=row["_counters"],
        )
    return result


def run_te_damping(
    seed: int = 0,
    n_clients: int = 24,
    horizon_s: float = 1200.0,
    te_period_s: float = 30.0,
) -> ExperimentResult:
    """Adaptive damping on the ISP's own oscillating TE loop.

    The §5 remedy applied infrastructure-side: the greedy TE keeps its
    policy, but an :class:`~repro.core.oscillation.AdaptiveDamper`
    watches its decision history and backs off once the egress choice
    starts flapping -- no damping cost while the loop is calm.
    """
    from repro.core.appp import StatusQuoAppP
    from repro.core.damping import ExponentialBackoff
    from repro.core.infp import StatusQuoInfP
    from repro.core.oscillation import AdaptiveDamper, OscillationDetector

    result = ExperimentResult(
        name="E10-te-damping",
        notes="greedy TE in the Figure 5 world; adaptive damper ablation",
    )
    for damper_kind in ("none", "adaptive"):
        scenario = build_scenario(
        "oscillation", seed=seed, params={"n_clients": n_clients}
    )
        sim = scenario.sim
        infp = StatusQuoInfP(
            sim, scenario.network, scenario.groups,
            te_period_s=te_period_s, stats_period_s=5.0,
        )
        if damper_kind == "adaptive":
            infp.te.damper = AdaptiveDamper(
                sim,
                detector=OscillationDetector(flip_threshold=2),
                backoff=ExponentialBackoff(
                    sim, base_s=te_period_s * 4, reset_after_s=3600.0
                ),
            )
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")
        players = launch_video_sessions(
            sim,
            scenario.network,
            scenario.catalog,
            policy,
            scenario.client_nodes,
            rng=sim.rng.get("arrivals"),
            rate_per_s=n_clients / 180.0,
            until=horizon_s - 200.0,
        )
        sim.run(until=horizon_s)
        infp.stop()
        summary = summarize(qoe_of(players))
        suppressed = (
            infp.te.damper.suppressed if infp.te.damper is not None else 0
        )
        result.add_row(
            te_damper=damper_kind,
            te_switches=infp.te.switch_count("cdnX"),
            suppressed_changes=suppressed,
            buffering_ratio=summary["mean_buffering_ratio"],
            engagement=summary["mean_engagement"],
            _counters=scenario.ctx.allocation_counters(),
        )
    return result


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    """Headline table: the partial-coupling churn with damping ablation."""
    return run_partial(seed=seed, **kwargs)


register(
    ExperimentSpec(
        exp_id="e10",
        title="timescale coupling and damping ablation (§5)",
        source="paper §5 new oscillations",
        module=__name__,
        variants=(
            VariantSpec(
                name="partial-coupling",
                runner=run_partial,
                checks=(
                    # Faster legacy TE loop flaps more...
                    check(
                        "te_switches",
                        {"te_period_s": 15.0, "damping": "off"},
                        ">",
                        of={"te_period_s": 120.0, "damping": "off"},
                    ),
                    # ...and damping suppresses the AppP-side churn.
                    check(
                        "cdn_switches",
                        {"te_period_s": 45.0, "damping": "on"},
                        "<",
                        0.5,
                        of={"te_period_s": 45.0, "damping": "off"},
                    ),
                ),
            ),
            VariantSpec(
                name="full-eona",
                runner=run_full,
                row_key="te_period_s",
                checks=(
                    check("te_switches", "*", "<=", 3),
                    check("cdn_switches", "*", "==", 0),
                ),
            ),
            VariantSpec(
                name="te-damping",
                runner=run_te_damping,
                row_key="te_damper",
                checks=(
                    check("te_switches", "adaptive", "<", 0.5, of="none"),
                    check("suppressed_changes", "adaptive", ">", 0),
                    check("engagement", "adaptive", ">=", of="none"),
                ),
            ),
        ),
    )
)
