"""Deterministic fault injection (`repro.faults`, DESIGN.md §10).

EONA's implicit contract is that when the A2I/I2A looking glasses fail,
stall, or lie, the EONA control loops degrade to no worse than the
status-quo baselines.  This package makes those failures injectable so
the claim is testable:

* :mod:`repro.faults.plan` -- declarative :class:`FaultPlan` /
  :class:`FaultEvent` specs with a builder DSL and a named-plan
  registry (``eona faults`` lists these);
* :mod:`repro.faults.injector` -- a :class:`FaultInjector` that drives
  a plan off the sim kernel, applying and reverting events through the
  existing seams (link capacities, glass availability, provider reset
  hooks) with apply/revert symmetry.

Experiment E15 compares eona vs. baseline vs. eona-with-fallback under
glass-outage and link-flap plans.
"""

from repro.faults.injector import KILL_CAPACITY_MBPS, FaultInjector
from repro.faults.plan import (
    EVENT_KINDS,
    FaultEvent,
    FaultPlan,
    NamedPlan,
    PlanBuilder,
    PlanError,
    get_plan,
    named_plans,
    register_plan,
)

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "KILL_CAPACITY_MBPS",
    "NamedPlan",
    "PlanBuilder",
    "PlanError",
    "get_plan",
    "named_plans",
    "register_plan",
]
