"""The fault injector: drives a :class:`FaultPlan` off the sim kernel.

A :class:`FaultInjector` binds a plan to one simulated world.  Targets
are resolved through the existing seams -- link events go through
:meth:`FluidNetwork.set_link_capacity`, glass events through the
availability/fault hooks on :class:`~repro.core.interfaces.LookingGlass`,
provider restarts through registered reset callables -- so the injector
adds no new mutation paths to the network or control plane.

Apply/revert symmetry is the core guarantee: the injector snapshots a
link's capacity the first time it faults it and ``link-restore`` puts
back *exactly* that value, so a recovered world is bit-identical to a
never-faulted one (asserted in tests via allocation equivalence).
Every action emits a ``fault-inject`` or ``fault-recover`` trace event
and bumps the dotted ``faults.*`` counters experiments fold into their
run-artifact metrics snapshot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.core.context import SimContext, resolve_sim_network
from repro.core.interfaces import LookingGlass
from repro.faults.plan import FaultEvent, FaultPlan, PlanError
from repro.network.fluidsim import FluidNetwork
from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator

#: Capacity a "killed" link is set to.  The fluid network rejects
#: non-positive capacities (a link with zero capacity would divide the
#: allocator by zero), so a kill is a cut to this floor: six orders of
#: magnitude below any real link, indistinguishable from down.
KILL_CAPACITY_MBPS = 1e-6


class FaultInjector:
    """Applies a :class:`FaultPlan` to one simulated world.

    Args:
        sim: The world's simulator, or its :class:`SimContext` (the
            network is then taken from the context).
        network: The fluid network, when ``sim`` is a bare simulator.

    Glasses and providers are attachment points the injector cannot
    discover from the network, so experiments register them by the
    names their plans target::

        injector = FaultInjector(ctx)
        injector.register_glass("isp", isp_glass)
        injector.register_provider("cdn-a", cdn_a.reset_soft_state)
        injector.install(plan)

    :meth:`install` validates every target *before* scheduling, so a
    plan naming an unknown link or glass fails fast, not mid-run.
    """

    def __init__(
        self,
        sim: Union[Simulator, SimContext],
        network: Optional[FluidNetwork] = None,
    ) -> None:
        self.sim, self.network = resolve_sim_network(sim, network)
        self._glasses: Dict[str, LookingGlass] = {}
        self._providers: Dict[str, Callable[[], None]] = {}
        self._saved_capacity: Dict[str, float] = {}
        self._counters: Dict[str, int] = {}
        self._installed: List[FaultPlan] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_glass(self, name: str, glass: LookingGlass) -> None:
        """Expose a looking glass to ``glass-*``/``query-*`` events."""
        self._glasses[name] = glass

    def register_provider(self, name: str, reset: Callable[[], None]) -> None:
        """Expose a provider's soft-state reset to ``provider-restart``."""
        self._providers[name] = reset

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, plan: FaultPlan) -> None:
        """Validate targets and schedule every event on the kernel."""
        for event in plan.events:
            self._resolve(event)  # raises PlanError on unknown targets
        for event in plan.events:
            self.sim.schedule_at(event.time_s, self._fire, event)
        self._installed.append(plan)

    @property
    def installed_plans(self) -> List[FaultPlan]:
        return list(self._installed)

    def counters(self) -> Dict[str, int]:
        """Dotted ``faults.*`` counters (copy), sorted by key."""
        return {key: self._counters[key] for key in sorted(self._counters)}

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------
    def _resolve(self, event: FaultEvent) -> object:
        kind = event.kind
        if kind.startswith("link-"):
            try:
                return self.network.topology.link(event.target)
            except KeyError:
                raise PlanError(f"{kind}: unknown link {event.target!r}") from None
        if kind.startswith(("glass-", "query-")):
            glass = self._glasses.get(event.target)
            if glass is None:
                known = ", ".join(sorted(self._glasses)) or "none registered"
                raise PlanError(
                    f"{kind}: unknown glass {event.target!r} (known: {known})"
                )
            return glass
        reset = self._providers.get(event.target)
        if reset is None:
            known = ", ".join(sorted(self._providers)) or "none registered"
            raise PlanError(
                f"{kind}: unknown provider {event.target!r} (known: {known})"
            )
        return reset

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "link-cut":
            self._cut_link(event)
        elif kind == "link-kill":
            self._saved_capacity.setdefault(
                event.target, self.network.topology.link(event.target).capacity_mbps
            )
            self._set_capacity(event.target, KILL_CAPACITY_MBPS)
        elif kind == "link-restore":
            self._restore_link(event)
        elif kind == "glass-outage":
            self._glasses[event.target].set_available(False)
        elif kind == "glass-recover":
            self._glasses[event.target].set_available(True)
        elif kind == "query-drop":
            self._glasses[event.target].set_fault_mode("drop")
        elif kind == "query-delay":
            self._glasses[event.target].set_fault_mode(
                "delay", delay_s=event.params["delay_s"]
            )
        elif kind == "query-freeze":
            self._glasses[event.target].set_fault_mode("freeze")
        elif kind == "query-clear":
            self._glasses[event.target].set_fault_mode(None)
        else:  # provider-restart (plan validation admits nothing else)
            self._providers[event.target]()
        self._record(event)

    def _cut_link(self, event: FaultEvent) -> None:
        link_id = event.target
        current = self.network.topology.link(link_id).capacity_mbps
        # First fault on a link snapshots the healthy capacity; repeated
        # cuts keep the original so restore is exact, not compounded.
        baseline = self._saved_capacity.setdefault(link_id, current)
        if "capacity_mbps" in event.params:
            capacity = event.params["capacity_mbps"]
        else:
            capacity = baseline * event.params["factor"]
        self._set_capacity(link_id, capacity)

    def _restore_link(self, event: FaultEvent) -> None:
        baseline = self._saved_capacity.pop(event.target, None)
        if baseline is None:
            return  # restore of a never-faulted link: nothing to revert
        self._set_capacity(event.target, baseline)

    def _set_capacity(self, link_id: str, capacity_mbps: float) -> None:
        self.network.set_link_capacity(link_id, capacity_mbps)

    def _record(self, event: FaultEvent) -> None:
        phase = "recovered" if event.is_recovery else "injected"
        self._bump(f"faults.{phase}")
        self._bump(f"faults.{event.kind.replace('-', '_')}")
        if TRACER.enabled:
            trace_kind = "fault-recover" if event.is_recovery else "fault-inject"
            TRACER.emit(
                trace_kind,
                fault=event.kind,
                target=event.target,
                **{name: event.params[name] for name in sorted(event.params)},
            )

    def _bump(self, key: str) -> None:
        self._counters[key] = self._counters.get(key, 0) + 1
