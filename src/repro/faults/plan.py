"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is an ordered, validated list of
:class:`FaultEvent` entries -- pure data, independent of any simulated
world, so the same plan can be applied to every mode of an experiment
(the worlds must degrade *identically* for the comparison to mean
anything).  Events are scheduled at absolute simulated times; the
:class:`PlanBuilder` DSL adds the recurring shapes (cut-with-recovery,
square-wave flaps, seeded stochastic outage processes drawn from a
context RNG stream, so plans stay seed-stable).

Experiments register reusable plans with :func:`register_plan`;
``eona faults`` lists and applies them by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Every fault kind the injector knows how to apply.  ``link-*`` events
#: target link ids, ``glass-*`` / ``query-*`` events target registered
#: looking glasses, ``provider-restart`` targets a registered provider
#: reset hook.
EVENT_KINDS: Tuple[str, ...] = (
    "link-cut",          # capacity cut (params: capacity_mbps or factor)
    "link-kill",         # capacity to the kill floor (partition member)
    "link-restore",      # back to the pre-fault capacity
    "glass-outage",      # every query raises GlassUnavailableError
    "glass-recover",     # availability restored
    "query-drop",        # queries are lost (counted separately from outages)
    "query-delay",       # answers age by +delay_s (params: delay_s)
    "query-freeze",      # snapshots stop refreshing: the glass goes stale
    "query-clear",       # drop/delay/freeze reverted, snapshots re-paced
    "provider-restart",  # provider soft state wiped via its reset hook
)

#: Kinds that *revert* an earlier fault (traced as ``fault-recover``).
RECOVERY_KINDS: Tuple[str, ...] = ("link-restore", "glass-recover", "query-clear")

#: Required numeric params per kind (beyond the always-optional ones).
_REQUIRED_PARAMS: Dict[str, Tuple[str, ...]] = {
    "query-delay": ("delay_s",),
}


class PlanError(ValueError):
    """Raised for malformed fault plans or events."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or recovery) action.

    Attributes:
        time_s: Absolute simulated time the event fires at.
        kind: One of :data:`EVENT_KINDS`.
        target: Link id, glass name, or provider name the event acts on.
        params: Kind-specific numeric parameters (e.g. ``capacity_mbps``
            for a cut, ``delay_s`` for a query delay).
    """

    time_s: float
    kind: str
    target: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise PlanError(f"event time must be >= 0, got {self.time_s!r}")
        if self.kind not in EVENT_KINDS:
            raise PlanError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(EVENT_KINDS)})"
            )
        if not self.target:
            raise PlanError(f"{self.kind} event needs a target")
        for name in _REQUIRED_PARAMS.get(self.kind, ()):
            if name not in self.params:
                raise PlanError(f"{self.kind} event needs param {name!r}")
        if self.kind == "link-cut" and not (
            "capacity_mbps" in self.params or "factor" in self.params
        ):
            raise PlanError("link-cut event needs capacity_mbps or factor")
        for name, value in self.params.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise PlanError(f"param {name}={value!r} must be numeric")

    @property
    def is_recovery(self) -> bool:
        return self.kind in RECOVERY_KINDS

    def describe(self) -> str:
        extras = " ".join(
            f"{name}={self.params[name]:g}" for name in sorted(self.params)
        )
        return f"t={self.time_s:g} {self.kind} {self.target}" + (
            f" ({extras})" if extras else ""
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, time-ordered fault schedule.

    Events are stored sorted by ``(time_s, insertion order)`` so two
    plans built from the same calls compare equal and inject in a
    deterministic order even at shared timestamps.
    """

    name: str
    events: Tuple[FaultEvent, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError("plan needs a name")
        ordered = tuple(
            event
            for _, event in sorted(
                enumerate(self.events), key=lambda pair: (pair[1].time_s, pair[0])
            )
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon_s(self) -> float:
        """Time of the last scheduled event (0 for an empty plan)."""
        return self.events[-1].time_s if self.events else 0.0

    def targets(self) -> List[str]:
        """Distinct targets the plan touches, sorted."""
        return sorted({event.target for event in self.events})

    def describe(self) -> str:
        header = f"plan {self.name!r}: {len(self.events)} events"
        if self.description:
            header += f" -- {self.description}"
        return "\n".join([header] + [f"  {event.describe()}" for event in self.events])


class PlanBuilder:
    """Small DSL for assembling :class:`FaultPlan` objects.

    Every method returns ``self`` so plans chain::

        plan = (
            PlanBuilder("peak-outage")
            .glass_outage("isp", at=35.0, until=400.0)
            .flap_link("core->agg", at=100.0, until=200.0,
                       down_s=10.0, period_s=40.0, factor=0.2)
            .build()
        )

    Stochastic helpers (:meth:`random_flaps`,
    :meth:`random_glass_outages`) draw their schedule from a caller-
    provided RNG -- pass a named context stream
    (``ctx.rng.get("faults")``) and the plan is a pure function of the
    root seed.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def cut_link(
        self,
        link_id: str,
        at: float,
        capacity_mbps: Optional[float] = None,
        factor: Optional[float] = None,
        until: Optional[float] = None,
    ) -> "PlanBuilder":
        """Cut a link's capacity; with ``until``, restore it afterwards."""
        params: Dict[str, float] = {}
        if capacity_mbps is not None:
            params["capacity_mbps"] = float(capacity_mbps)
        if factor is not None:
            params["factor"] = float(factor)
        self._add(FaultEvent(at, "link-cut", link_id, params))
        if until is not None:
            self.restore_link(link_id, at=until)
        return self

    def kill_link(
        self, link_id: str, at: float, until: Optional[float] = None
    ) -> "PlanBuilder":
        """Take a link down entirely (capacity to the kill floor)."""
        self._add(FaultEvent(at, "link-kill", link_id))
        if until is not None:
            self.restore_link(link_id, at=until)
        return self

    def restore_link(self, link_id: str, at: float) -> "PlanBuilder":
        self._add(FaultEvent(at, "link-restore", link_id))
        return self

    def partition(
        self, link_ids: Sequence[str], at: float, until: Optional[float] = None
    ) -> "PlanBuilder":
        """Kill a set of links together (a provider/segment partition)."""
        if not link_ids:
            raise PlanError("partition needs at least one link")
        for link_id in link_ids:
            self.kill_link(link_id, at=at, until=until)
        return self

    def flap_link(
        self,
        link_id: str,
        at: float,
        until: float,
        down_s: float,
        period_s: float,
        capacity_mbps: Optional[float] = None,
        factor: Optional[float] = None,
    ) -> "PlanBuilder":
        """Square-wave flapping: down ``down_s`` out of every ``period_s``.

        The final restore is always emitted (at ``until`` if a down
        interval would overrun it), so a flapped link ends healthy.
        """
        if until <= at:
            raise PlanError(f"flap window is empty ({at!r} .. {until!r})")
        if not 0 < down_s < period_s:
            raise PlanError("need 0 < down_s < period_s")
        start = at
        while start < until:
            self.cut_link(
                link_id,
                at=start,
                capacity_mbps=capacity_mbps,
                factor=factor,
                until=min(start + down_s, until),
            )
            start += period_s
        return self

    def random_flaps(
        self,
        link_id: str,
        rng: random.Random,
        at: float,
        until: float,
        rate_per_s: float,
        mean_down_s: float,
        capacity_mbps: Optional[float] = None,
        factor: Optional[float] = None,
    ) -> "PlanBuilder":
        """Poisson-arriving cuts with exponential repair times.

        The schedule is drawn *now*, from ``rng``; pass a named context
        stream so the plan is reproducible from the root seed.
        """
        if rate_per_s <= 0 or mean_down_s <= 0:
            raise PlanError("rate_per_s and mean_down_s must be positive")
        time = at + rng.expovariate(rate_per_s)
        while time < until:
            down = min(time + rng.expovariate(1.0 / mean_down_s), until)
            self.cut_link(
                link_id,
                at=time,
                capacity_mbps=capacity_mbps,
                factor=factor,
                until=down,
            )
            time = down + rng.expovariate(rate_per_s)
        return self

    # ------------------------------------------------------------------
    # looking-glass faults
    # ------------------------------------------------------------------
    def glass_outage(
        self, glass: str, at: float, until: Optional[float] = None
    ) -> "PlanBuilder":
        """Take a looking glass dark; with ``until``, bring it back."""
        self._add(FaultEvent(at, "glass-outage", glass))
        if until is not None:
            self._add(FaultEvent(until, "glass-recover", glass))
        return self

    def random_glass_outages(
        self,
        glass: str,
        rng: random.Random,
        at: float,
        until: float,
        rate_per_s: float,
        mean_outage_s: float,
    ) -> "PlanBuilder":
        """Seeded stochastic outage/recovery process for one glass."""
        if rate_per_s <= 0 or mean_outage_s <= 0:
            raise PlanError("rate_per_s and mean_outage_s must be positive")
        time = at + rng.expovariate(rate_per_s)
        while time < until:
            recover = min(time + rng.expovariate(1.0 / mean_outage_s), until)
            self.glass_outage(glass, at=time, until=recover)
            time = recover + rng.expovariate(rate_per_s)
        return self

    def drop_queries(
        self, glass: str, at: float, until: Optional[float] = None
    ) -> "PlanBuilder":
        self._add(FaultEvent(at, "query-drop", glass))
        if until is not None:
            self.clear_queries(glass, at=until)
        return self

    def delay_queries(
        self, glass: str, delay_s: float, at: float, until: Optional[float] = None
    ) -> "PlanBuilder":
        """Answers keep flowing but report ``delay_s`` extra staleness."""
        self._add(FaultEvent(at, "query-delay", glass, {"delay_s": float(delay_s)}))
        if until is not None:
            self.clear_queries(glass, at=until)
        return self

    def freeze_queries(
        self, glass: str, at: float, until: Optional[float] = None
    ) -> "PlanBuilder":
        """Snapshots stop refreshing: the glass answers, but lies."""
        self._add(FaultEvent(at, "query-freeze", glass))
        if until is not None:
            self.clear_queries(glass, at=until)
        return self

    def clear_queries(self, glass: str, at: float) -> "PlanBuilder":
        self._add(FaultEvent(at, "query-clear", glass))
        return self

    # ------------------------------------------------------------------
    # provider faults
    # ------------------------------------------------------------------
    def restart_provider(self, provider: str, at: float) -> "PlanBuilder":
        """Wipe a provider's soft state through its registered reset hook."""
        self._add(FaultEvent(at, "provider-restart", provider))
        return self

    # ------------------------------------------------------------------
    def _add(self, event: FaultEvent) -> None:
        self._events.append(event)

    def build(self) -> FaultPlan:
        return FaultPlan(
            name=self.name, events=tuple(self._events), description=self.description
        )


# ---------------------------------------------------------------------------
# Named-plan registry (the `eona faults` inventory)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NamedPlan:
    """A reusable plan: a factory plus the experiment that owns it.

    Attributes:
        name: Registry key (unique).
        factory: Zero-argument callable building the canonical plan
            (experiments bake in their canonical targets and times).
        experiment: Owning experiment id (``"e15"``), or ``""``.
        description: One-line summary shown by ``eona faults``.
        apply: Optional demo runner: applies the plan to the owning
            experiment's canonical world and returns the resulting
            fault counters (what ``eona faults --apply`` executes).
    """

    name: str
    factory: Callable[[], FaultPlan]
    experiment: str = ""
    description: str = ""
    apply: Optional[Callable[[FaultPlan], Mapping[str, int]]] = None


_PLANS: Dict[str, NamedPlan] = {}


def register_plan(
    name: str,
    factory: Callable[[], FaultPlan],
    experiment: str = "",
    description: str = "",
    apply: Optional[Callable[[FaultPlan], Mapping[str, int]]] = None,
) -> NamedPlan:
    """Register a named plan; idempotent for re-imports of one owner."""
    existing = _PLANS.get(name)
    if existing is not None and existing.experiment != experiment:
        raise PlanError(
            f"plan {name!r} registered by both "
            f"{existing.experiment or '?'} and {experiment or '?'}"
        )
    plan = NamedPlan(
        name=name,
        factory=factory,
        experiment=experiment,
        description=description,
        apply=apply,
    )
    _PLANS[name] = plan
    return plan


def named_plans(experiment: Optional[str] = None) -> List[NamedPlan]:
    """Registered plans (optionally one experiment's), sorted by name."""
    plans = sorted(_PLANS.values(), key=lambda plan: plan.name)
    if experiment is None:
        return plans
    return [plan for plan in plans if plan.experiment == experiment]


def get_plan(name: str) -> NamedPlan:
    try:
        return _PLANS[name]
    except KeyError:
        known = ", ".join(sorted(_PLANS)) or "none registered"
        raise KeyError(f"unknown fault plan {name!r} (known: {known})") from None
