"""Compiled library worlds match their figure's constraints.

These are the world-shape assertions that used to test the hand-coded
builders in ``workloads/scenarios.py``, re-pointed at the declarative
twins that replaced them.
"""

from repro.scenarios import build_scenario


class TestFlashCrowd:
    def test_access_is_the_bottleneck(self):
        scenario = build_scenario(
            "flash-crowd", params={"access_capacity_mbps": 45.0}
        )
        access = scenario.topology.link(scenario.access_link)
        assert access.capacity_mbps == 45.0
        peering = scenario.topology.links(tag="peering")
        assert all(link.capacity_mbps > access.capacity_mbps for link in peering)

    def test_both_cdns_have_headroom(self):
        scenario = build_scenario("flash-crowd")
        assert all(cdn.has_capacity() for cdn in scenario.cdns)

    def test_client_count(self):
        scenario = build_scenario("flash-crowd", params={"n_clients": 7})
        assert len(scenario.client_nodes) == 7


class TestOscillation:
    def test_figure5_capacity_ordering(self):
        scenario = build_scenario(
            "oscillation",
            params={
                "n_clients": 24,
                "peering_b_mbps": 60.0,
                "peering_c_mbps": 300.0,
                "cdn_y_uplink_mbps": 45.0,
            },
        )
        b = scenario.topology.link(scenario.peering_b_link)
        c = scenario.topology.link(scenario.peering_c_link)
        demand = 24 * 3.0  # clients at a mid-ladder bitrate
        assert b.capacity_mbps < demand < c.capacity_mbps
        y_uplink = scenario.topology.link_between("cdnY", "peerC")
        assert y_uplink.capacity_mbps < demand

    def test_group_prefers_b(self):
        scenario = build_scenario("oscillation")
        group = next(g for g in scenario.groups if g.name == "cdnX")
        assert group.preferred == "peerB"
        assert set(group.candidates) == {"peerB", "peerC"}

    def test_cdn_y_has_single_candidate(self):
        scenario = build_scenario("oscillation")
        group = next(g for g in scenario.groups if g.name == "cdnY")
        assert group.candidates == ["peerC"]


class TestCoarseControl:
    def test_one_degraded_one_healthy_server(self):
        scenario = build_scenario("coarse-control")
        degraded = [s for s in scenario.cdn_x.servers.values() if s.degraded]
        healthy = [s for s in scenario.cdn_x.servers.values() if not s.degraded]
        assert len(degraded) == 1
        assert len(healthy) == 1

    def test_cdn_x_warm_cdn_y_cold(self):
        scenario = build_scenario("coarse-control")
        item = scenario.catalog.by_rank(0)
        for server in scenario.cdn_x.servers.values():
            assert item.content_id in server.cache
        for server in scenario.cdn_y.servers.values():
            assert item.content_id not in server.cache

    def test_degraded_rate_below_lowest_rung(self):
        scenario = build_scenario("coarse-control")
        degraded = next(s for s in scenario.cdn_x.servers.values() if s.degraded)
        assert degraded.degraded_rate_mbps < 0.4


class TestEnergy:
    def test_servers_and_uplinks_aligned(self):
        scenario = build_scenario("energy", params={"n_servers": 4})
        assert len(scenario.cdn.servers) == 4
        assert set(scenario.server_uplinks) == set(scenario.cdn.servers)

    def test_finite_uplinks(self):
        scenario = build_scenario("energy", params={"server_uplink_mbps": 50.0})
        for link_id in scenario.server_uplinks.values():
            assert scenario.topology.link(link_id).capacity_mbps == 50.0


class TestCdnFault:
    def test_fault_plan_armed_at_build(self):
        scenario = build_scenario("cdn-fault")
        uplink = scenario.topology.link(scenario.cdn1_uplink)
        healthy = uplink.capacity_mbps
        scenario.sim.run(until=scenario.fault_at_s + 1.0)
        assert uplink.capacity_mbps < healthy
        scenario.sim.run(until=scenario.recover_at_s + 1.0)
        assert uplink.capacity_mbps == healthy

    def test_install_faults_false_never_degrades(self):
        scenario = build_scenario("cdn-fault", install_faults=False)
        uplink = scenario.topology.link(scenario.cdn1_uplink)
        healthy = uplink.capacity_mbps
        scenario.sim.run(until=scenario.recover_at_s + 1.0)
        assert uplink.capacity_mbps == healthy


class TestCellularWeb:
    def test_one_radio_and_browser_per_client(self):
        scenario = build_scenario("cellular-web", params={"n_clients": 5})
        assert len(scenario.radios) == 5
        assert len(scenario.browsers) == 5
        assert len(scenario.access_links) == 5

    def test_radios_have_independent_streams(self):
        scenario = build_scenario("cellular-web", params={"n_clients": 3})
        scenario.sim.run(until=200.0)
        states = {radio.stats.transitions for radio in scenario.radios}
        assert len(states) > 1  # not all identical trajectories

    def test_deterministic_per_seed(self):
        def run_once():
            scenario = build_scenario(
                "cellular-web", seed=7, params={"n_clients": 2}
            )
            scenario.sim.run(until=100.0)
            return tuple(radio.stats.transitions for radio in scenario.radios)

        assert run_once() == run_once()
