"""Schema validation: precise rejections and serialization identity.

A spec author's first contact with the subsystem is an error message,
so these tests pin not just *that* bad specs are rejected but that the
message names the offending path and the legal alternatives.
"""

import copy

import pytest

from repro.scenarios import (
    library_names,
    load_library_spec,
    load_round_trip,
    load_spec,
    validate_spec,
)
from repro.scenarios.schema import ScenarioError


def spec_dict(name: str = "flash-crowd") -> dict:
    return load_library_spec(name).to_dict()


def rejection(data: dict) -> str:
    with pytest.raises(ScenarioError) as caught:
        load_spec(data)
    return str(caught.value)


class TestUnknownKeys:
    def test_top_level(self):
        data = spec_dict()
        data["bogus"] = 1
        message = rejection(data)
        assert "unknown key(s) 'bogus'" in message
        assert "topology" in message  # lists the legal keys

    def test_node_directive(self):
        data = spec_dict()
        data["topology"]["build"][0]["node"]["colour"] = "red"
        message = rejection(data)
        assert "scenario.topology.build[0].node" in message
        assert "unknown key(s) 'colour'" in message

    def test_population(self):
        data = spec_dict()
        data["populations"][0]["rate_profile"] = {}
        message = rejection(data)
        assert "scenario.populations[0]" in message
        assert "unknown key(s) 'rate_profile'" in message


class TestPhaseOrdering:
    def test_phase_must_start_after_predecessor(self):
        data = spec_dict()
        last = data["phases"][-1]
        data["phases"].append({"name": "late", "at_s": last["at_s"] - 10.0})
        message = rejection(data)
        assert "must start after" in message
        assert last["name"] in message

    def test_equal_start_times_overlap(self):
        data = spec_dict()
        data["phases"].append({"name": "twin", "at_s": data["phases"][-1]["at_s"]})
        assert "must start after" in rejection(data)


class TestDanglingReferences:
    def test_link_to_unknown_node(self):
        data = spec_dict()
        data["topology"]["build"].append(
            {"link": {"src": "ghost", "dst": "core",
                      "capacity_mbps": 1.0, "delay_ms": 1.0, "owner": "isp"}}
        )
        assert "unknown node 'ghost'" in rejection(data)

    def test_fault_event_on_unknown_link(self):
        data = spec_dict()
        data["faults"] = [{
            "name": "f",
            "events": [{"at_s": 1.0, "kind": "link-cut",
                        "link": "ghost", "capacity_mbps": 1.0}],
        }]
        message = rejection(data)
        assert "scenario.faults[0].events[0].link" in message
        assert "unknown link 'ghost'" in message
        assert "access" in message  # offers the known aliases

    def test_population_on_unknown_group(self):
        data = spec_dict()
        data["populations"][0]["group"] = "nope"
        message = rejection(data)
        assert "unknown group 'nope'" in message
        assert "clients" in message

    def test_egress_link_alias(self):
        data = spec_dict("oscillation")
        data["egress"][0]["links"]["peerB"] = "ghost-link"
        message = rejection(data)
        assert "scenario.egress[0].links[peerB]" in message
        assert "unknown link 'ghost-link'" in message

    def test_egress_candidate_node(self):
        data = spec_dict("oscillation")
        data["egress"][0]["candidates"].append("ghost")
        assert "unknown candidate node 'ghost'" in rejection(data)

    def test_cdn_origin_node(self):
        data = spec_dict("coarse-control")
        data["cdns"][0]["origin"] = "ghost"
        message = rejection(data)
        assert "scenario.cdns[0].origin" in message
        assert "unknown node 'ghost'" in message

    def test_named_fault_plan_lazy_by_default(self):
        # ``use:`` references resolve against a registry populated at
        # import time elsewhere, so plain load_spec stays permissive...
        data = spec_dict()
        data["faults"] = [{"name": "f", "use": "no-such-plan"}]
        spec = load_spec(data)
        assert validate_spec(spec) == []

    def test_named_fault_plan_strict_mode(self):
        # ...and the CLI's validate runs strict, where it must resolve.
        data = spec_dict()
        data["faults"] = [{"name": "f", "use": "no-such-plan"}]
        (problem,) = validate_spec(load_spec(data), strict_named_plans=True)
        assert "scenario.faults[0]" in problem
        assert "no-such-plan" in problem


class TestRoundTrip:
    @pytest.mark.parametrize("name", library_names())
    def test_load_dump_load_identity(self, name):
        spec = load_library_spec(name)
        assert load_round_trip(spec).to_dict() == spec.to_dict()

    def test_round_trip_of_mutated_spec(self):
        data = spec_dict("live-event")
        data["params"]["n_clients"] = 7
        spec = load_spec(copy.deepcopy(data))
        assert load_round_trip(spec).to_dict() == spec.to_dict()
