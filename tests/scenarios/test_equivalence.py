"""Same-seed trace equivalence: declarative twin == hand-coded builder.

Every migrated scenario is built twice -- once by the verbatim legacy
builder (``legacy_builders``) and once from its committed spec via
:func:`repro.scenarios.build_scenario` -- then driven by an *identical*
workload and compared as raw JSONL bytes.  Byte identity is the
strongest statement the determinism contract can make: same topology
construction order, same RNG draws, same event ordering, same floats.
"""

from __future__ import annotations

import pytest

from repro.core.appp import StatusQuoAppP
from repro.experiments.common import launch_video_sessions
from repro.obs.trace import TRACER
from repro.scenarios import build_scenario
from repro.web.page import make_page
from repro.workloads.arrivals import flash_crowd_rate

from tests.scenarios import legacy_builders as legacy

SEED = 3


@pytest.fixture(autouse=True)
def _fresh_tracer():
    TRACER.close()
    yield
    TRACER.close()


def _traced(tmp_path, tag, build_and_drive):
    """Run one world under tracing; return the sink's raw bytes."""
    path = tmp_path / f"{tag}.jsonl"
    TRACER.enable(capacity=500_000, sink=str(path))
    try:
        build_and_drive()
    finally:
        TRACER.close()
    data = path.read_bytes()
    assert data, f"{tag}: empty trace (driver exercised nothing)"
    return data


def _drive_video(scenario, client_nodes, cdns, until=120.0, run_until=200.0,
                 rate_per_s=0.4, rate_fn=None, max_rate_per_s=None):
    """The shared workload: a status-quo AppP plus an arrival process."""
    policy = StatusQuoAppP(scenario.sim, cdns, name="appp")
    launch_video_sessions(
        scenario.ctx,
        catalog=scenario.catalog,
        policy=policy,
        client_nodes=client_nodes,
        rate_per_s=rate_per_s,
        rate_fn=rate_fn,
        max_rate_per_s=max_rate_per_s,
        until=until,
    )
    scenario.sim.run(until=run_until)


def _assert_twin(tmp_path, name, build_legacy, build_twin, drive):
    old = _traced(tmp_path, f"{name}-legacy",
                  lambda: drive(build_legacy()))
    new = _traced(tmp_path, f"{name}-twin",
                  lambda: drive(build_twin()))
    assert old == new, f"{name}: declarative twin diverged from legacy trace"


# ----------------------------------------------------------------------
# the seven migrated worlds
# ----------------------------------------------------------------------

def test_flash_crowd_twin_is_byte_identical(tmp_path):
    rate_fn = flash_crowd_rate(0.05, 1.5, 30.0, 30.0, 60.0)

    def build_legacy():
        scenario = legacy.build_flash_crowd_scenario(seed=SEED)
        # The spec carries the onset/peak/decay phases, compiled at
        # build time; the legacy path schedules them here, in the same
        # pre-run position.
        legacy.trace_phases(
            scenario.sim, "flash-crowd",
            {"onset": 30.0, "peak": 60.0, "decay": 120.0},
        )
        return scenario

    def drive(scenario):
        _drive_video(
            scenario, scenario.client_nodes, scenario.cdns,
            rate_fn=rate_fn, max_rate_per_s=1.5,
        )

    _assert_twin(
        tmp_path, "flash-crowd",
        build_legacy,
        lambda: build_scenario("flash-crowd", seed=SEED),
        drive,
    )


def test_flash_crowd_population_matches_inline_rate(tmp_path):
    """Driving via the spec's population gives the same bytes as the
    hand-built flash_crowd_rate call -- the declared arrival process is
    the real one."""

    def drive_population():
        scenario = build_scenario("flash-crowd", seed=SEED)
        policy = StatusQuoAppP(scenario.sim, scenario.cdns, name="appp")
        kwargs = scenario.world.population("viewers").launch_kwargs(until=120.0)
        launch_video_sessions(
            scenario.ctx, catalog=scenario.catalog, policy=policy, **kwargs
        )
        scenario.sim.run(until=200.0)

    def drive_inline():
        scenario = build_scenario("flash-crowd", seed=SEED)
        _drive_video(
            scenario, scenario.client_nodes, scenario.cdns,
            rate_fn=flash_crowd_rate(0.05, 1.5, 30.0, 30.0, 60.0),
            max_rate_per_s=1.5,
        )

    a = _traced(tmp_path, "fc-population", drive_population)
    b = _traced(tmp_path, "fc-inline", drive_inline)
    assert a == b


def test_oscillation_twin_is_byte_identical(tmp_path):
    def drive(scenario):
        _drive_video(scenario, scenario.client_nodes, scenario.cdns,
                     rate_per_s=0.5)

    _assert_twin(
        tmp_path, "oscillation",
        lambda: legacy.build_oscillation_scenario(seed=SEED),
        lambda: build_scenario("oscillation", seed=SEED),
        drive,
    )


def test_oscillation_twin_egress_groups_match(tmp_path):
    old = legacy.build_oscillation_scenario(seed=SEED)
    new = build_scenario("oscillation", seed=SEED)
    for a, b in zip(old.groups, new.groups):
        assert (a.name, a.remote, list(a.candidates), a.preferred) == (
            b.name, b.remote, list(b.candidates), b.preferred
        )
        assert a.egress_links == b.egress_links
    assert new.peering_b_link == old.peering_b_link
    assert new.peering_c_link == old.peering_c_link


def test_coarse_control_twin_is_byte_identical(tmp_path):
    def drive(scenario):
        _drive_video(scenario, scenario.client_nodes, scenario.cdns,
                     rate_per_s=0.5)

    _assert_twin(
        tmp_path, "coarse-control",
        lambda: legacy.build_coarse_control_scenario(seed=SEED),
        lambda: build_scenario("coarse-control", seed=SEED),
        drive,
    )


def test_energy_twin_is_byte_identical(tmp_path):
    def drive(scenario):
        _drive_video(scenario, scenario.client_nodes, [scenario.cdn],
                     rate_per_s=0.6)

    _assert_twin(
        tmp_path, "energy",
        lambda: legacy.build_energy_scenario(seed=SEED),
        lambda: build_scenario("energy", seed=SEED),
        drive,
    )


def test_energy_twin_server_uplinks_match():
    old = legacy.build_energy_scenario(seed=SEED)
    new = build_scenario("energy", seed=SEED)
    assert new.server_uplinks == old.server_uplinks


def test_cdn_fault_twin_is_byte_identical(tmp_path):
    """Compared with faults disarmed: the legacy builder never armed
    them either (that was ``schedule_fault``'s job, now a FaultPlan)."""

    def drive(scenario):
        _drive_video(scenario, scenario.client_nodes, scenario.cdns,
                     rate_per_s=0.25, until=150.0, run_until=250.0)

    _assert_twin(
        tmp_path, "cdn-fault",
        lambda: legacy.build_cdn_fault_scenario(seed=SEED),
        lambda: build_scenario("cdn-fault", seed=SEED, install_faults=False),
        drive,
    )


def test_cdn_fault_plan_matches_legacy_capacity_timeline():
    """The spec-declared plan reproduces ``schedule_fault``'s capacity
    arc: healthy -> degraded at fault_at_s -> healthy at recover_at_s."""
    old = legacy.build_cdn_fault_scenario(seed=SEED)
    old.schedule_fault(degraded_mbps=10.0)
    new = build_scenario("cdn-fault", seed=SEED)
    assert new.fault_at_s == old.fault_at_s == 200.0
    assert new.recover_at_s == old.recover_at_s == 500.0

    def capacity(scenario):
        return scenario.topology.link(scenario.cdn1_uplink).capacity_mbps

    for scenario in (old, new):
        scenario.sim.run(until=150.0)
    assert capacity(new) == capacity(old) == 150.0
    for scenario in (old, new):
        scenario.sim.run(until=250.0)
    assert capacity(new) == capacity(old) == 10.0
    for scenario in (old, new):
        scenario.sim.run(until=550.0)
    assert capacity(new) == capacity(old) == 150.0


def test_two_isp_twin_is_byte_identical(tmp_path):
    def drive(scenario):
        clients = scenario.clients_isp1 + scenario.clients_isp2
        _drive_video(scenario, clients, scenario.cdns, rate_per_s=0.5)

    _assert_twin(
        tmp_path, "two-isp",
        lambda: legacy.build_two_isp_scenario(seed=SEED),
        lambda: build_scenario("two-isp", seed=SEED),
        drive,
    )


def test_two_isp_twin_isp_attribution_matches():
    old = legacy.build_two_isp_scenario(seed=SEED)
    new = build_scenario("two-isp", seed=SEED)
    assert new.clients_isp1 == old.clients_isp1
    assert new.clients_isp2 == old.clients_isp2
    assert new.access_link_isp1 == old.access_link_isp1
    assert new.access_link_isp2 == old.access_link_isp2
    for node in new.clients_isp1 + new.clients_isp2:
        assert new.isp_of_client(node) == old.isp_of_client(node)


def test_cellular_web_twin_is_byte_identical(tmp_path):
    """Browsers load the same page sequence over the same radio draws."""

    def drive(scenario):
        sim = scenario.sim
        page_rng = scenario.rng
        loads = []

        def browse(browser, remaining, index):
            if remaining <= 0:
                return
            page = make_page(page_rng, page_id=f"p{index}-{remaining}")

            def done(record):
                loads.append((record.page_id, record.plt_s))
                sim.schedule(
                    page_rng.expovariate(1.0 / 3.0),
                    browse, browser, remaining - 1, index,
                )

            browser.load_page(page, on_done=done)

        for index, browser in enumerate(scenario.browsers):
            sim.schedule(page_rng.uniform(0, 5), browse, browser, 4, index)
        sim.run(until=120.0)
        for radio in scenario.radios:
            radio.stop()
        assert loads, "no page loads completed"

    _assert_twin(
        tmp_path, "cellular-web",
        lambda: legacy.build_cellular_web_scenario(seed=SEED),
        lambda: build_scenario("cellular-web", seed=SEED),
        drive,
    )
