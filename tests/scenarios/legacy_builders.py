"""Verbatim copy of the pre-declarative ``workloads/scenarios.py``.

Kept only as the reference implementation for the same-seed trace-
equivalence tests: each declarative twin under ``scenarios/library/``
must produce byte-identical JSONL traces to the hand-coded builder it
replaced.  Nothing outside ``tests/scenarios`` may import this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.cdn.content import ContentCatalog
from repro.cdn.origin import Origin
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.context import SimContext, build_context
from repro.core.registry import OptInRegistry
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator
from repro.sdn.te import EgressGroup
from repro.web.browser import Browser
from repro.web.radio import RadioModel


# ----------------------------------------------------------------------
# Figure 3: flash crowd behind a congested access network
# ----------------------------------------------------------------------
@dataclass
class FlashCrowdScenario:
    """World for E2: two healthy CDNs, one narrow access segment."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdns: List[Cdn]
    catalog: ContentCatalog
    client_nodes: List[str]
    access_link: str
    registry: OptInRegistry
    ctx: SimContext


def build_flash_crowd_scenario(
    seed: int = 0,
    n_clients: int = 30,
    access_capacity_mbps: float = 45.0,
    client_link_mbps: float = 100.0,
    catalog_items: int = 20,
    content_duration_s: float = 120.0,
) -> FlashCrowdScenario:
    """Both CDNs are fine; the ISP's access aggregate is the bottleneck.

    Switching CDNs cannot help (the congestion is after the peering);
    only reducing the per-session bitrate can (Figure 3's lesson).
    """
    topo = Topology("flash-crowd")
    topo.add_node("cdn1", NodeKind.SERVER, owner="cdn1")
    topo.add_node("cdn2", NodeKind.SERVER, owner="cdn2")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("agg", NodeKind.ROUTER, owner="isp")
    topo.add_link("cdn1", "core", 10_000.0, delay_ms=10, owner="isp", tags=("peering",))
    topo.add_link("cdn2", "core", 10_000.0, delay_ms=12, owner="isp", tags=("peering",))
    access = topo.add_link(
        "core", "agg", access_capacity_mbps, delay_ms=2, owner="isp", tags=("access",)
    )
    client_nodes = []
    for index in range(n_clients):
        node = f"client{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("agg", node, client_link_mbps, delay_ms=5, owner="isp")
        client_nodes.append(node)

    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(
        n_items=catalog_items, duration_s=content_duration_s, zipf_alpha=1.1
    )
    cdns = [
        Cdn("cdn1", [CdnServer("cdn1.s1", "cdn1", capacity_sessions=10_000)], ctx=ctx),
        Cdn("cdn2", [CdnServer("cdn2.s1", "cdn2", capacity_sessions=10_000)], ctx=ctx),
    ]
    return FlashCrowdScenario(
        sim=ctx.sim,
        topology=topo,
        network=ctx.network,
        cdns=cdns,
        catalog=catalog,
        client_nodes=client_nodes,
        access_link=access.link_id,
        registry=ctx.registry,
        ctx=ctx,
    )


# ----------------------------------------------------------------------
# Figure 5: the CDN-switching / peering-selection oscillator
# ----------------------------------------------------------------------
@dataclass
class OscillationScenario:
    """World for E4: CDN X via peerings B or C; CDN Y via C only."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdn_x: Cdn
    cdn_y: Cdn
    catalog: ContentCatalog
    client_nodes: List[str]
    groups: List[EgressGroup]
    registry: OptInRegistry
    peering_b_link: str
    peering_c_link: str
    ctx: SimContext

    @property
    def cdns(self) -> List[Cdn]:
        return [self.cdn_x, self.cdn_y]


def build_oscillation_scenario(
    seed: int = 0,
    n_clients: int = 24,
    peering_b_mbps: float = 60.0,
    peering_c_mbps: float = 300.0,
    cdn_y_uplink_mbps: float = 45.0,
) -> OscillationScenario:
    """Figure 5's world, sized so every arrow of the figure is live.

    Total demand (~n_clients × 3 Mbit/s) exceeds peering B's capacity
    and CDN Y's uplink, but fits comfortably through peering C -- the
    "green path" only a coordinated choice discovers.
    """
    topo = Topology("oscillation")
    topo.add_node("cdnX", NodeKind.SERVER, owner="cdnX")
    topo.add_node("cdnY", NodeKind.SERVER, owner="cdnY")
    topo.add_node("peerB", NodeKind.PEERING, owner="isp")
    topo.add_node("peerC", NodeKind.PEERING, owner="isp")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("agg", NodeKind.ROUTER, owner="isp")
    # CDN attachment links are ample except CDN Y's limited uplink.
    topo.add_link("cdnX", "peerB", 10_000.0, delay_ms=2, owner="cdnX")
    topo.add_link("cdnX", "peerC", 10_000.0, delay_ms=8, owner="cdnX")
    topo.add_link("cdnY", "peerC", cdn_y_uplink_mbps, delay_ms=8, owner="cdnY")
    # The ISP-side peering facilities are the steerable bottlenecks.
    link_b = topo.add_link(
        "peerB", "core", peering_b_mbps, delay_ms=1, owner="isp", tags=("peering",)
    )
    link_c = topo.add_link(
        "peerC", "core", peering_c_mbps, delay_ms=1, owner="isp", tags=("peering",)
    )
    topo.add_link("core", "agg", 10_000.0, delay_ms=2, owner="isp")
    client_nodes = []
    for index in range(n_clients):
        node = f"client{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("agg", node, 100.0, delay_ms=5, owner="isp")
        client_nodes.append(node)

    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(n_items=10, duration_s=180.0)
    cdn_x = Cdn("cdnX", [CdnServer("cdnX.s1", "cdnX", capacity_sessions=10_000)], ctx=ctx)
    cdn_y = Cdn("cdnY", [CdnServer("cdnY.s1", "cdnY", capacity_sessions=10_000)], ctx=ctx)
    groups = [
        EgressGroup(
            name="cdnX",
            remote="cdnX",
            candidates=["peerB", "peerC"],
            egress_links={"peerB": link_b.link_id, "peerC": link_c.link_id},
            preferred="peerB",
        ),
        EgressGroup(
            name="cdnY",
            remote="cdnY",
            candidates=["peerC"],
            egress_links={"peerC": link_c.link_id},
        ),
    ]
    return OscillationScenario(
        sim=ctx.sim,
        topology=topo,
        network=ctx.network,
        cdn_x=cdn_x,
        cdn_y=cdn_y,
        catalog=catalog,
        client_nodes=client_nodes,
        groups=groups,
        registry=ctx.registry,
        peering_b_link=link_b.link_id,
        peering_c_link=link_c.link_id,
        ctx=ctx,
    )


# ----------------------------------------------------------------------
# §2 "coarse control": one bad server inside a warm CDN
# ----------------------------------------------------------------------
@dataclass
class CoarseControlScenario:
    """World for E1: warm CDN X with one degraded server, cold CDN Y."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdn_x: Cdn
    cdn_y: Cdn
    catalog: ContentCatalog
    client_nodes: List[str]
    registry: OptInRegistry
    ctx: SimContext

    @property
    def cdns(self) -> List[Cdn]:
        return [self.cdn_x, self.cdn_y]


def build_coarse_control_scenario(
    seed: int = 0,
    n_clients: int = 20,
    degraded_rate_mbps: float = 0.3,
    origin_uplink_mbps: float = 25.0,
    catalog_items: int = 40,
) -> CoarseControlScenario:
    """CDN X's server e1 is degraded; e2 is healthy and cache-warm.

    CDN Y works but its caches are cold, so every chunk a switched
    session fetches pulls through Y's narrow origin uplink.  The
    EONA-I2A server hint makes the intra-CDN switch possible.
    """
    topo = Topology("coarse-control")
    topo.add_node("originX", NodeKind.ORIGIN, owner="cdnX")
    topo.add_node("originY", NodeKind.ORIGIN, owner="cdnY")
    topo.add_node("cdnX.e1", NodeKind.SERVER, owner="cdnX")
    topo.add_node("cdnX.e2", NodeKind.SERVER, owner="cdnX")
    topo.add_node("cdnY.e1", NodeKind.SERVER, owner="cdnY")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("agg", NodeKind.ROUTER, owner="isp")
    topo.add_link("originX", "cdnX.e1", origin_uplink_mbps, delay_ms=40, owner="cdnX")
    topo.add_link("originX", "cdnX.e2", origin_uplink_mbps, delay_ms=40, owner="cdnX")
    topo.add_link("originY", "cdnY.e1", origin_uplink_mbps, delay_ms=40, owner="cdnY")
    topo.add_link("cdnX.e1", "core", 10_000.0, delay_ms=5, owner="isp", tags=("peering",))
    topo.add_link("cdnX.e2", "core", 10_000.0, delay_ms=5, owner="isp", tags=("peering",))
    topo.add_link("cdnY.e1", "core", 10_000.0, delay_ms=5, owner="isp", tags=("peering",))
    topo.add_link("core", "agg", 10_000.0, delay_ms=2, owner="isp")
    client_nodes = []
    for index in range(n_clients):
        node = f"client{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("agg", node, 100.0, delay_ms=5, owner="isp")
        client_nodes.append(node)

    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(n_items=catalog_items, duration_s=120.0, zipf_alpha=0.9)
    server_e1 = CdnServer(
        "cdnX.e1", "cdnX.e1", capacity_sessions=10_000,
        cache_mbit=1e7, degraded_rate_mbps=degraded_rate_mbps,
    )
    server_e2 = CdnServer("cdnX.e2", "cdnX.e2", capacity_sessions=10_000, cache_mbit=1e7)
    cdn_x = Cdn("cdnX", [server_e1, server_e2], origin=Origin("originX"), ctx=ctx)
    cdn_x.warm_caches(catalog, top_fraction=1.0)
    server_y = CdnServer("cdnY.e1", "cdnY.e1", capacity_sessions=10_000, cache_mbit=1e7)
    cdn_y = Cdn("cdnY", [server_y], origin=Origin("originY"), ctx=ctx)
    return CoarseControlScenario(
        sim=ctx.sim,
        topology=topo,
        network=ctx.network,
        cdn_x=cdn_x,
        cdn_y=cdn_y,
        catalog=catalog,
        client_nodes=client_nodes,
        registry=ctx.registry,
        ctx=ctx,
    )


# ----------------------------------------------------------------------
# §2 "configuration changes": server energy saving
# ----------------------------------------------------------------------
@dataclass
class EnergyScenario:
    """World for E5: one CDN with several clusters, diurnal demand."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdn: Cdn
    catalog: ContentCatalog
    client_nodes: List[str]
    registry: OptInRegistry
    server_uplinks: Dict[str, str]
    ctx: SimContext


def build_energy_scenario(
    seed: int = 0,
    n_servers: int = 6,
    n_clients: int = 40,
    server_uplink_mbps: float = 50.0,
    server_capacity_sessions: int = 25,
) -> EnergyScenario:
    """Each cluster has a finite uplink; fewer powered servers means
    less aggregate serving capacity, so overshooting the shutdown
    degrades QoE in a way only client-side measurement reveals."""
    topo = Topology("energy")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("agg", NodeKind.ROUTER, owner="isp")
    topo.add_link("core", "agg", 10_000.0, delay_ms=2, owner="isp")
    servers = []
    uplinks: Dict[str, str] = {}
    for index in range(n_servers):
        node = f"edge{index}"
        topo.add_node(node, NodeKind.SERVER, owner="cdn")
        link = topo.add_link(node, "core", server_uplink_mbps, delay_ms=5, owner="cdn")
        server = CdnServer(
            f"cdn.{node}", node, capacity_sessions=server_capacity_sessions
        )
        servers.append(server)
        uplinks[server.server_id] = link.link_id
    client_nodes = []
    for index in range(n_clients):
        node = f"client{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("agg", node, 100.0, delay_ms=5, owner="isp")
        client_nodes.append(node)

    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(n_items=15, duration_s=90.0)
    cdn = Cdn("cdn", servers, ctx=ctx)
    return EnergyScenario(
        sim=ctx.sim,
        topology=topo,
        network=ctx.network,
        cdn=cdn,
        catalog=catalog,
        client_nodes=client_nodes,
        registry=ctx.registry,
        server_uplinks=uplinks,
        ctx=ctx,
    )


# ----------------------------------------------------------------------
# Control-plane scenario: a CDN degrades mid-run (C3-style steering)
# ----------------------------------------------------------------------
@dataclass
class CdnFaultScenario:
    """World for E13: two CDNs, one suffers a mid-run capacity fault."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdns: List[Cdn]
    catalog: ContentCatalog
    client_nodes: List[str]
    cdn1_uplink: str
    registry: OptInRegistry
    fault_at_s: float
    recover_at_s: float
    ctx: SimContext

    def schedule_fault(self, degraded_mbps: float = 10.0) -> None:
        """Arm the capacity fault and recovery on CDN 1's uplink."""
        healthy = self.topology.link(self.cdn1_uplink).capacity_mbps

        def fault() -> None:
            self.network.set_link_capacity(self.cdn1_uplink, degraded_mbps)
            if TRACER.enabled:
                TRACER.emit(
                    "phase-transition",
                    scenario="cdn-fault",
                    phase="fault",
                    link=self.cdn1_uplink,
                    capacity_mbps=degraded_mbps,
                )

        def recover() -> None:
            self.network.set_link_capacity(self.cdn1_uplink, healthy)
            if TRACER.enabled:
                TRACER.emit(
                    "phase-transition",
                    scenario="cdn-fault",
                    phase="recover",
                    link=self.cdn1_uplink,
                    capacity_mbps=healthy,
                )

        self.sim.schedule_at(self.fault_at_s, fault)
        self.sim.schedule_at(self.recover_at_s, recover)


def build_cdn_fault_scenario(
    seed: int = 0,
    n_clients: int = 25,
    cdn_uplink_mbps: float = 150.0,
    fault_at_s: float = 200.0,
    recover_at_s: float = 500.0,
) -> CdnFaultScenario:
    """Two equivalent CDNs behind one healthy ISP; CDN 1's uplink will
    collapse mid-run.  How fast the AppP's control logic notices and
    steers the fleet is the C3-vs-per-session-reaction question."""
    topo = Topology("cdn-fault")
    topo.add_node("cdn1", NodeKind.SERVER, owner="cdn1")
    topo.add_node("cdn2", NodeKind.SERVER, owner="cdn2")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("agg", NodeKind.ROUTER, owner="isp")
    uplink1 = topo.add_link(
        "cdn1", "core", cdn_uplink_mbps, delay_ms=8, owner="cdn1", tags=("peering",)
    )
    topo.add_link(
        "cdn2", "core", cdn_uplink_mbps, delay_ms=10, owner="cdn2", tags=("peering",)
    )
    topo.add_link("core", "agg", 10_000.0, delay_ms=2, owner="isp")
    client_nodes = []
    for index in range(n_clients):
        node = f"client{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("agg", node, 100.0, delay_ms=5, owner="isp")
        client_nodes.append(node)

    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(n_items=20, duration_s=120.0, zipf_alpha=1.0)
    cdns = [
        Cdn("cdn1", [CdnServer("cdn1.s1", "cdn1", capacity_sessions=10_000)], ctx=ctx),
        Cdn("cdn2", [CdnServer("cdn2.s1", "cdn2", capacity_sessions=10_000)], ctx=ctx),
    ]
    return CdnFaultScenario(
        sim=ctx.sim,
        topology=topo,
        network=ctx.network,
        cdns=cdns,
        catalog=catalog,
        client_nodes=client_nodes,
        cdn1_uplink=uplink1.link_id,
        registry=ctx.registry,
        fault_at_s=fault_at_s,
        recover_at_s=recover_at_s,
        ctx=ctx,
    )


def trace_phases(
    sim: Simulator, scenario: str, transitions: Dict[str, float]
) -> None:
    """Schedule ``phase-transition`` trace events for a scenario's arc.

    Called by experiments whose phase structure lives in arrival-rate
    shapes rather than scheduled topology changes (e.g. the flash
    crowd's onset/peak/decay).  Only schedules anything when tracing is
    already enabled, so untraced runs keep an event history identical
    to a build that never called this -- the determinism contract.
    """
    if not TRACER.enabled:
        return

    def emit_phase(phase: str) -> None:
        if TRACER.enabled:
            TRACER.emit("phase-transition", scenario=scenario, phase=phase)

    for phase in sorted(transitions, key=lambda name: (transitions[name], name)):
        sim.schedule_at(transitions[phase], emit_phase, phase)


# ----------------------------------------------------------------------
# §3 attributes: one AppP serving clients across two access ISPs
# ----------------------------------------------------------------------
@dataclass
class TwoIspScenario:
    """World for E12: identical CDNs, two ISPs, one congested."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdns: List[Cdn]
    catalog: ContentCatalog
    clients_isp1: List[str]
    clients_isp2: List[str]
    access_link_isp1: str
    access_link_isp2: str
    registry: OptInRegistry
    ctx: SimContext

    def isp_of_client(self, client_node: str) -> str:
        return "isp1" if client_node in set(self.clients_isp1) else "isp2"


def build_two_isp_scenario(
    seed: int = 0,
    n_clients_per_isp: int = 15,
    isp1_access_mbps: float = 25.0,
    isp2_access_mbps: float = 500.0,
) -> TwoIspScenario:
    """Two eyeball ISPs behind the same CDNs; only ISP1's access is
    narrow.  The A2I attribute question (client ISP) decides whether a
    congestion response can be scoped to the viewers it concerns."""
    topo = Topology("two-isp")
    topo.add_node("cdn1", NodeKind.SERVER, owner="cdn1")
    topo.add_node("cdn2", NodeKind.SERVER, owner="cdn2")
    clients_isp1: List[str] = []
    clients_isp2: List[str] = []
    access_links: Dict[str, str] = {}
    for isp, capacity, bucket in (
        ("isp1", isp1_access_mbps, clients_isp1),
        ("isp2", isp2_access_mbps, clients_isp2),
    ):
        core = f"{isp}.core"
        agg = f"{isp}.agg"
        topo.add_node(core, NodeKind.ROUTER, owner=isp)
        topo.add_node(agg, NodeKind.ROUTER, owner=isp)
        topo.add_link("cdn1", core, 10_000.0, delay_ms=8, owner=isp, tags=("peering",))
        topo.add_link("cdn2", core, 10_000.0, delay_ms=10, owner=isp, tags=("peering",))
        access = topo.add_link(
            core, agg, capacity, delay_ms=2, owner=isp, tags=("access",)
        )
        access_links[isp] = access.link_id
        for index in range(n_clients_per_isp):
            node = f"{isp}.client{index}"
            topo.add_node(node, NodeKind.CLIENT, owner=isp)
            topo.add_link(agg, node, 100.0, delay_ms=5, owner=isp)
            bucket.append(node)

    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(n_items=20, duration_s=120.0, zipf_alpha=1.1)
    cdns = [
        Cdn("cdn1", [CdnServer("cdn1.s1", "cdn1", capacity_sessions=10_000)], ctx=ctx),
        Cdn("cdn2", [CdnServer("cdn2.s1", "cdn2", capacity_sessions=10_000)], ctx=ctx),
    ]
    return TwoIspScenario(
        sim=ctx.sim,
        topology=topo,
        network=ctx.network,
        cdns=cdns,
        catalog=catalog,
        clients_isp1=clients_isp1,
        clients_isp2=clients_isp2,
        access_link_isp1=access_links["isp1"],
        access_link_isp2=access_links["isp2"],
        registry=ctx.registry,
        ctx=ctx,
    )


# ----------------------------------------------------------------------
# Figure 4: web browsing over a cellular access network
# ----------------------------------------------------------------------
@dataclass
class CellularWebScenario:
    """World for E3: per-client radio-modulated access links."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    client_nodes: List[str]
    access_links: List[str]
    radios: List[RadioModel]
    browsers: List[Browser]
    server_node: str
    rng: random.Random
    ctx: SimContext


def build_cellular_web_scenario(
    seed: int = 0,
    n_clients: int = 12,
    radio_tick_s: float = 1.0,
) -> CellularWebScenario:
    """One web server, a cellular core, and clients with independent
    radio processes driving their last-hop capacity."""
    topo = Topology("cellular-web")
    topo.add_node("web", NodeKind.SERVER, owner="appp")
    topo.add_node("cellcore", NodeKind.ROUTER, owner="isp")
    topo.add_node("bs", NodeKind.BASE_STATION, owner="isp")
    topo.add_link("web", "cellcore", 10_000.0, delay_ms=20, owner="isp")
    topo.add_link("cellcore", "bs", 10_000.0, delay_ms=10, owner="isp")
    client_nodes = []
    access_links = []
    for index in range(n_clients):
        node = f"ue{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        link = topo.add_link(
            "bs", node, 20.0, delay_ms=25, owner="isp", tags=("access", "radio")
        )
        client_nodes.append(node)
        access_links.append(link.link_id)

    ctx = build_context(topology=topo, seed=seed)
    sim, network = ctx.sim, ctx.network
    radios = []
    browsers = []
    for index, (node, link_id) in enumerate(zip(client_nodes, access_links)):
        rng = sim.rng.get(f"radio:{index}")
        radio = RadioModel(sim, network, link_id, rng, tick_s=radio_tick_s)
        radios.append(radio)
        browsers.append(
            Browser(sim, network, client_node=node, server_node="web", radio=radio)
        )
    return CellularWebScenario(
        sim=sim,
        topology=topo,
        network=network,
        client_nodes=client_nodes,
        access_links=access_links,
        radios=radios,
        browsers=browsers,
        server_node="web",
        rng=sim.rng.get("pages"),
        ctx=ctx,
    )
