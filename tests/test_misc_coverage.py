"""Edge cases that don't belong to one package's suite."""

import math

import pytest

from repro.sdn.messages import PortStats, StatsReply
from repro.telemetry.records import record_from_pageload
from repro.web.browser import PageLoadRecord


class TestPortStats:
    def test_utilization(self):
        stats = PortStats("l", load_mbps=5.0, capacity_mbps=10.0, mbit_carried=0.0)
        assert stats.utilization == 0.5

    def test_zero_capacity_guard(self):
        stats = PortStats("l", load_mbps=5.0, capacity_mbps=0.0, mbit_carried=0.0)
        assert stats.utilization == 0.0

    def test_stats_reply_port_lookup(self):
        reply = StatsReply(
            switch_id="sw", time=1.0,
            ports=(PortStats("a", 1.0, 2.0, 0.0), PortStats("b", 1.0, 2.0, 0.0)),
        )
        assert reply.port("b").link_id == "b"
        assert reply.port("missing") is None


class TestPageloadBeacon:
    def _record(self):
        return PageLoadRecord(
            page_id="p", client_node="ue0", started_at=10.0, plt_s=3.0,
            main_doc_s=0.5, total_mbit=4.0, object_count=7,
            mean_throughput_mbps=4.0 / 3.0,
            frac_good=0.8, frac_fair=0.1, frac_poor=0.1,
            handovers=1, radio_transitions=3,
        )

    def test_beacon_fields(self):
        beacon = record_from_pageload(self._record(), isp="cell1")
        assert beacon.time == 13.0  # start + PLT
        assert beacon.attr("app") == "web"
        assert beacon.attr("isp") == "cell1"
        assert beacon.metric("plt_s") == 3.0

    def test_extra_attrs_merged(self):
        beacon = record_from_pageload(self._record(), extra_attrs={"city": "x"})
        assert beacon.attr("city") == "x"


class TestPublicApiSurface:
    def test_top_level_packages_importable(self):
        import repro.baselines
        import repro.cdn
        import repro.core
        import repro.experiments
        import repro.faults
        import repro.network
        import repro.sdn
        import repro.simkernel
        import repro.telemetry
        import repro.video
        import repro.web
        import repro.workloads

    def test_all_exports_resolve(self):
        """Every name in each package's __all__ must actually exist."""
        import importlib

        packages = [
            "repro.simkernel", "repro.network", "repro.sdn", "repro.cdn",
            "repro.video", "repro.web", "repro.telemetry", "repro.core",
            "repro.baselines", "repro.workloads", "repro.faults",
        ]
        for name in packages:
            module = importlib.import_module(name)
            for exported in getattr(module, "__all__", []):
                assert hasattr(module, exported), f"{name}.{exported}"

    def test_registered_variants_all_runnable_signatures(self):
        """Each spec variant's runner is callable with just a seed (the
        contract `eona run all` and the multiseed driver rely on)."""
        import inspect

        from repro.experiments import registry

        for spec in registry.all_specs():
            assert spec.title, spec.exp_id
            for variant in spec.variants:
                signature = inspect.signature(variant.runner)
                required = [
                    parameter
                    for parameter in signature.parameters.values()
                    if parameter.default is inspect.Parameter.empty
                    and parameter.kind
                    not in (
                        inspect.Parameter.VAR_POSITIONAL,
                        inspect.Parameter.VAR_KEYWORD,
                    )
                ]
                assert len(required) <= 1, f"{spec.exp_id}/{variant.name}"
