"""Timeline and stream-store edge cases: empty, NaN, out-of-order."""

import math

import pytest

from repro.telemetry.aggregate import AggregateRow
from repro.telemetry.streamdb import TimeSeriesStore
from repro.telemetry.timeline import TimelineProbe, TimelineSample


def _row(window_start, group=("x",), count=5, mean=0.1):
    return AggregateRow(
        window_start=window_start,
        window_s=10.0,
        group=group,
        count=count,
        means={"m": mean},
        mins={"m": mean},
        maxs={"m": mean},
        variances={"m": 0.0},
    )


class TestTimelineEmpty:
    def test_unsampled_probe_is_empty(self, sim):
        probe = TimelineProbe(sim, {"c": lambda: 1.0}, period_s=10.0)
        # The sim never runs: no samples, and every reducer has a
        # well-defined empty answer instead of a ZeroDivisionError.
        assert probe.times() == []
        assert probe.series("c") == []
        assert probe.mean("c") == 0.0
        assert probe.changes("c") == 0
        assert probe.window_mean("c", 0.0, 100.0) == 0.0
        assert probe.to_rows() == []

    def test_unknown_metric_raises(self, sim):
        probe = TimelineProbe(sim, {"c": lambda: 1.0}, period_s=10.0)
        with pytest.raises(KeyError):
            probe.series("missing")
        with pytest.raises(KeyError):
            probe.mean("missing")


class TestTimelineNaN:
    def test_mean_skips_nan_samples(self, sim):
        values = iter([1.0, float("nan"), 3.0])
        probe = TimelineProbe(sim, {"m": lambda: next(values)}, period_s=10.0)
        sim.run(until=35.0)
        series = probe.series("m")
        assert len(series) == 3 and math.isnan(series[1])
        assert probe.mean("m") == 2.0  # NaN dropped, not averaged in

    def test_window_mean_skips_nan_and_respects_bounds(self, sim):
        values = iter([1.0, float("nan"), 5.0, 100.0])
        probe = TimelineProbe(sim, {"m": lambda: next(values)}, period_s=10.0)
        sim.run(until=45.0)
        # Samples at t=10,20,30,40; the window is half-open [10, 40).
        assert probe.window_mean("m", 10.0, 40.0) == 3.0
        assert probe.window_mean("m", 100.0, 200.0) == 0.0

    def test_all_nan_mean_is_zero(self, sim):
        probe = TimelineProbe(sim, {"m": lambda: float("nan")}, period_s=10.0)
        sim.run(until=25.0)
        assert probe.mean("m") == 0.0


class TestTimelineChanges:
    def test_changes_within_tolerance_ignored(self, sim):
        values = iter([1.0, 1.0 + 1e-12, 2.0, 2.0])
        probe = TimelineProbe(sim, {"m": lambda: next(values)}, period_s=10.0)
        sim.run(until=45.0)
        assert probe.changes("m") == 1
        assert probe.changes("m", tolerance=0.0) == 2

    def test_to_rows_stride(self, sim):
        probe = TimelineProbe(sim, {"m": lambda: sim.now}, period_s=10.0)
        sim.run(until=65.0)
        rows = probe.to_rows(stride=3)
        assert [row["time"] for row in rows] == [10.0, 40.0]

    def test_sample_value_default(self):
        sample = TimelineSample(time=0.0, values={"m": 1.0})
        assert sample.value("missing") == 0.0
        assert sample.value("missing", default=-1.0) == -1.0


class TestStoreEmpty:
    def test_empty_store_queries(self):
        store = TimeSeriesStore()
        assert store.groups() == []
        assert store.latest(("x",)) is None
        assert store.series(("x",)) == []
        assert store.mean_over(("x",), "m") is None
        assert store.scan(where=lambda group: True) == []
        assert store.rows_stored == 0

    def test_retention_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(retention_rows=0)
        with pytest.raises(ValueError):
            TimeSeriesStore(retention_rows=-3)

    def test_zero_count_windows_mean_is_none(self):
        store = TimeSeriesStore()
        store.append(_row(0.0, count=0))
        store.append(_row(10.0, count=0))
        # Rows exist but aggregate nothing: no mean, not a 0/0 crash.
        assert store.mean_over(("x",), "m", last_n=2) is None


class TestStoreOutOfOrder:
    def test_out_of_order_inserts_keep_arrival_order(self):
        store = TimeSeriesStore()
        store.append(_row(20.0, mean=0.2))
        store.append(_row(0.0, mean=0.0))  # late window arrives after
        store.append(_row(10.0, mean=0.1))
        series = store.series(("x",))
        # The store is append-only: arrival order is preserved, and
        # ``latest`` means latest *arrival*, not max window_start.
        assert [row.window_start for row in series] == [20.0, 0.0, 10.0]
        assert store.latest(("x",)).window_start == 10.0

    def test_since_filters_by_window_start_not_position(self):
        store = TimeSeriesStore()
        store.append(_row(20.0))
        store.append(_row(0.0))
        store.append(_row(10.0))
        kept = store.series(("x",), since=10.0)
        assert [row.window_start for row in kept] == [20.0, 10.0]

    def test_retention_evicts_by_arrival_order(self):
        store = TimeSeriesStore(retention_rows=2)
        store.append(_row(30.0))
        store.append(_row(0.0))
        store.append(_row(20.0))
        series = store.series(("x",))
        assert [row.window_start for row in series] == [0.0, 20.0]
        assert store.rows_stored == 3  # the counter is lifetime appends

    def test_groups_are_isolated(self):
        store = TimeSeriesStore(retention_rows=1)
        store.append(_row(0.0, group=("a",)))
        store.append(_row(10.0, group=("b",)))
        store.append(_row(20.0, group=("a",)))
        assert store.latest(("a",)).window_start == 20.0
        assert store.latest(("b",)).window_start == 10.0
        assert sorted(store.groups()) == [("a",), ("b",)]
