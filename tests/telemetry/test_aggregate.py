"""Windowed group-by aggregation: correctness and streaming stats."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.aggregate import GroupByAggregator
from repro.telemetry.records import SessionRecord


def _record(time, cdn="x", value=1.0):
    return SessionRecord(
        time=time, attrs={"cdn": cdn}, metrics={"m": value}
    )


def _aggregator(window=10.0, sink=None):
    return GroupByAggregator(
        window_s=window, group_keys=("cdn",), metrics=("m",), sink=sink
    )


class TestWindowing:
    def test_window_closes_on_boundary_crossing(self):
        rows = []
        agg = _aggregator(sink=rows.append)
        agg.add(_record(1.0, value=2.0))
        agg.add(_record(5.0, value=4.0))
        assert rows == []
        agg.add(_record(11.0, value=9.0))
        assert len(rows) == 1
        assert rows[0].count == 2
        assert rows[0].mean("m") == pytest.approx(3.0)
        assert rows[0].window_start == 0.0

    def test_explicit_flush(self):
        agg = _aggregator()
        agg.add(_record(1.0))
        rows = agg.flush()
        assert len(rows) == 1
        assert agg.flush() == []

    def test_groups_separate(self):
        agg = _aggregator()
        agg.add(_record(1.0, cdn="x", value=1.0))
        agg.add(_record(2.0, cdn="y", value=3.0))
        rows = {row.group: row for row in agg.flush()}
        assert rows[("x",)].mean("m") == 1.0
        assert rows[("y",)].mean("m") == 3.0

    def test_straggler_lands_in_current_window(self):
        rows = []
        agg = _aggregator(sink=rows.append)
        agg.add(_record(15.0))
        agg.add(_record(3.0))  # older than the open window: kept anyway
        agg.flush()
        assert rows[0].count == 2

    def test_missing_metric_skipped(self):
        agg = _aggregator()
        agg.add(SessionRecord(time=1.0, attrs={"cdn": "x"}, metrics={}))
        agg.add(_record(2.0, value=4.0))
        row = agg.flush()[0]
        assert row.count == 2
        assert row.mean("m") == pytest.approx(4.0)  # only one contributed

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            _aggregator(window=0.0)


class TestStatistics:
    def test_min_max_variance(self):
        agg = _aggregator()
        for value in (2.0, 4.0, 6.0):
            agg.add(_record(1.0, value=value))
        row = agg.flush()[0]
        assert row.mins["m"] == 2.0
        assert row.maxs["m"] == 6.0
        assert row.variances["m"] == pytest.approx(8.0 / 3.0)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=40))
    def test_streaming_mean_matches_batch(self, values):
        agg = _aggregator()
        for value in values:
            agg.add(_record(1.0, value=value))
        row = agg.flush()[0]
        assert row.mean("m") == pytest.approx(sum(values) / len(values), rel=1e-6, abs=1e-6)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=40))
    def test_variance_non_negative(self, values):
        agg = _aggregator()
        for value in values:
            agg.add(_record(1.0, value=value))
        assert agg.flush()[0].variances["m"] >= 0.0


class TestCounters:
    def test_records_and_rows_counted(self):
        agg = _aggregator()
        for t in (1.0, 2.0, 12.0):
            agg.add(_record(t))
        agg.flush()
        assert agg.records_processed == 3
        assert agg.rows_emitted == 2

    def test_open_groups_tracks_cardinality(self):
        agg = _aggregator()
        for cdn in ("a", "b", "c"):
            agg.add(_record(1.0, cdn=cdn))
        assert agg.open_groups == 3
        agg.flush()
        assert agg.open_groups == 0
