"""Windowed group-by aggregation: correctness and streaming stats."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.aggregate import GroupByAggregator
from repro.telemetry.records import SessionRecord


def _record(time, cdn="x", value=1.0):
    return SessionRecord(
        time=time, attrs={"cdn": cdn}, metrics={"m": value}
    )


def _aggregator(window=10.0, sink=None):
    return GroupByAggregator(
        window_s=window, group_keys=("cdn",), metrics=("m",), sink=sink
    )


class TestWindowing:
    def test_window_closes_on_boundary_crossing(self):
        rows = []
        agg = _aggregator(sink=rows.append)
        agg.add(_record(1.0, value=2.0))
        agg.add(_record(5.0, value=4.0))
        assert rows == []
        agg.add(_record(11.0, value=9.0))
        assert len(rows) == 1
        assert rows[0].count == 2
        assert rows[0].mean("m") == pytest.approx(3.0)
        assert rows[0].window_start == 0.0

    def test_explicit_flush(self):
        agg = _aggregator()
        agg.add(_record(1.0))
        rows = agg.flush()
        assert len(rows) == 1
        assert agg.flush() == []

    def test_groups_separate(self):
        agg = _aggregator()
        agg.add(_record(1.0, cdn="x", value=1.0))
        agg.add(_record(2.0, cdn="y", value=3.0))
        rows = {row.group: row for row in agg.flush()}
        assert rows[("x",)].mean("m") == 1.0
        assert rows[("y",)].mean("m") == 3.0

    def test_straggler_lands_in_current_window(self):
        rows = []
        agg = _aggregator(sink=rows.append)
        agg.add(_record(15.0))
        agg.add(_record(3.0))  # older than the open window: kept anyway
        agg.flush()
        assert rows[0].count == 2

    def test_missing_metric_skipped(self):
        agg = _aggregator()
        agg.add(SessionRecord(time=1.0, attrs={"cdn": "x"}, metrics={}))
        agg.add(_record(2.0, value=4.0))
        row = agg.flush()[0]
        assert row.count == 2
        assert row.mean("m") == pytest.approx(4.0)  # only one contributed

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            _aggregator(window=0.0)


class TestStatistics:
    def test_min_max_variance(self):
        agg = _aggregator()
        for value in (2.0, 4.0, 6.0):
            agg.add(_record(1.0, value=value))
        row = agg.flush()[0]
        assert row.mins["m"] == 2.0
        assert row.maxs["m"] == 6.0
        assert row.variances["m"] == pytest.approx(8.0 / 3.0)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=40))
    def test_streaming_mean_matches_batch(self, values):
        agg = _aggregator()
        for value in values:
            agg.add(_record(1.0, value=value))
        row = agg.flush()[0]
        assert row.mean("m") == pytest.approx(sum(values) / len(values), rel=1e-6, abs=1e-6)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=40))
    def test_variance_non_negative(self, values):
        agg = _aggregator()
        for value in values:
            agg.add(_record(1.0, value=value))
        assert agg.flush()[0].variances["m"] >= 0.0


class TestCounters:
    def test_records_and_rows_counted(self):
        agg = _aggregator()
        for t in (1.0, 2.0, 12.0):
            agg.add(_record(t))
        agg.flush()
        assert agg.records_processed == 3
        assert agg.rows_emitted == 2

    def test_open_groups_tracks_cardinality(self):
        agg = _aggregator()
        for cdn in ("a", "b", "c"):
            agg.add(_record(1.0, cdn=cdn))
        assert agg.open_groups == 3
        agg.flush()
        assert agg.open_groups == 0


class TestFlushBoundaries:
    def test_record_exactly_on_window_edge_opens_next_window(self):
        rows = []
        agg = _aggregator(window=10.0, sink=rows.append)
        agg.add(_record(9.999, value=1.0))
        agg.add(_record(10.0, value=5.0))
        assert len(rows) == 1
        assert rows[0].window_start == 0.0
        assert rows[0].means["m"] == pytest.approx(1.0)
        final = agg.flush()
        assert final[0].window_start == 10.0
        assert final[0].means["m"] == pytest.approx(5.0)

    def test_flush_up_to_aligns_to_window_grid(self):
        agg = _aggregator(window=10.0)
        agg.add(_record(1.0))
        agg.flush(up_to=25.0)
        # The next open window starts on the grid point covering 25.0,
        # not at 25.0 itself.
        agg.add(_record(26.0))
        assert agg.flush()[0].window_start == 20.0

    def test_flush_up_to_exact_boundary(self):
        agg = _aggregator(window=10.0)
        agg.add(_record(1.0))
        agg.flush(up_to=20.0)
        agg.add(_record(20.5))
        assert agg.flush()[0].window_start == 20.0

    def test_flush_without_up_to_forgets_window_origin(self):
        agg = _aggregator(window=10.0)
        agg.add(_record(3.0))
        agg.flush()
        # A fresh first record re-anchors the grid from its own time.
        agg.add(_record(47.0))
        assert agg.flush()[0].window_start == 40.0

    def test_flush_empty_aggregator_is_noop(self):
        agg = _aggregator()
        assert agg.flush() == []
        assert agg.flush(up_to=100.0) == []

    def test_straggler_joins_current_window(self):
        agg = _aggregator(window=10.0)
        agg.add(_record(15.0, value=1.0))
        agg.add(_record(2.0, value=3.0))  # older than the open window
        rows = agg.flush()
        assert len(rows) == 1
        assert rows[0].window_start == 10.0
        assert rows[0].count == pytest.approx(2.0)


class TestWeightedRows:
    def test_weighted_mean_matches_expanded_records(self):
        weighted = _aggregator(window=1e9)
        weighted.add(_record(1.0, value=2.0), weight=3.0)
        weighted.add(_record(1.0, value=6.0), weight=1.0)
        expanded = _aggregator(window=1e9)
        for value in (2.0, 2.0, 2.0, 6.0):
            expanded.add(_record(1.0, value=value))
        w_row = weighted.flush()[0]
        e_row = expanded.flush()[0]
        assert w_row.count == pytest.approx(e_row.count)
        assert w_row.means["m"] == pytest.approx(e_row.means["m"])
        assert w_row.variances["m"] == pytest.approx(e_row.variances["m"])

    def test_fractional_weights_accumulate(self):
        agg = _aggregator(window=1e9)
        agg.add(_record(1.0, value=4.0), weight=0.5)
        agg.add(_record(1.0, value=8.0), weight=1.5)
        row = agg.flush()[0]
        assert row.count == pytest.approx(2.0)
        assert row.means["m"] == pytest.approx((0.5 * 4.0 + 1.5 * 8.0) / 2.0)

    def test_extrema_ignore_weights(self):
        agg = _aggregator(window=1e9)
        agg.add(_record(1.0, value=10.0), weight=100.0)
        agg.add(_record(1.0, value=-2.0), weight=0.25)
        row = agg.flush()[0]
        assert row.mins["m"] == -2.0
        assert row.maxs["m"] == 10.0

    def test_non_positive_weight_rejected(self):
        agg = _aggregator()
        with pytest.raises(ValueError, match="weight"):
            agg.add(_record(1.0), weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            agg.add(_record(1.0), weight=-1.0)
