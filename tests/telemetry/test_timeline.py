"""Timeline probe sampling and analysis helpers."""

import math

import pytest

from repro.telemetry.timeline import TimelineProbe


class TestSampling:
    def test_samples_on_period(self, sim):
        probe = TimelineProbe(sim, {"clock": lambda: sim.now}, period_s=10.0)
        sim.run(until=35.0)
        assert probe.times() == [10.0, 20.0, 30.0]
        assert probe.series("clock") == [10.0, 20.0, 30.0]

    def test_start_at(self, sim):
        probe = TimelineProbe(
            sim, {"c": lambda: 1.0}, period_s=10.0, start_at=2.0
        )
        sim.run(until=25.0)
        assert probe.times() == [2.0, 12.0, 22.0]

    def test_failing_metric_becomes_nan(self, sim):
        def boom():
            raise RuntimeError("down")

        probe = TimelineProbe(sim, {"boom": boom, "ok": lambda: 1.0}, period_s=5.0)
        sim.run(until=6.0)
        assert math.isnan(probe.series("boom")[0])
        assert probe.series("ok") == [1.0]

    def test_stop(self, sim):
        probe = TimelineProbe(sim, {"c": lambda: 1.0}, period_s=5.0)
        sim.schedule(12.0, probe.stop)
        sim.run(until=100.0)
        assert len(probe.samples) == 2

    def test_needs_metrics(self, sim):
        with pytest.raises(ValueError):
            TimelineProbe(sim, {})

    def test_unknown_metric_rejected(self, sim):
        probe = TimelineProbe(sim, {"c": lambda: 1.0}, period_s=5.0)
        with pytest.raises(KeyError):
            probe.series("nope")


class TestAnalysis:
    def _probe_with(self, sim, values):
        state = {"i": -1}

        def step():
            state["i"] += 1
            return values[min(state["i"], len(values) - 1)]

        probe = TimelineProbe(sim, {"v": step}, period_s=1.0)
        sim.run(until=len(values) + 0.5)
        return probe

    def test_changes_counts_transitions(self, sim):
        probe = self._probe_with(sim, [0, 0, 1, 1, 0, 1])
        assert probe.changes("v") == 3

    def test_mean_skips_nan(self, sim):
        probe = TimelineProbe(
            sim,
            {"v": lambda: 2.0 if sim.now < 2.5 else float("nan")},
            period_s=1.0,
        )
        sim.run(until=5.5)
        assert probe.mean("v") == pytest.approx(2.0)

    def test_window_mean(self, sim):
        probe = self._probe_with(sim, [1, 1, 5, 5, 5])
        assert probe.window_mean("v", 3.0, 6.0) == pytest.approx(5.0)

    def test_to_rows_with_stride(self, sim):
        probe = self._probe_with(sim, [1, 2, 3, 4])
        rows = probe.to_rows(stride=2)
        assert [row["time"] for row in rows] == [1.0, 3.0]
        assert rows[0]["v"] == 1.0
