"""QoE inference model: fitting, prediction, rank metrics."""

import numpy as np
import pytest

from repro.telemetry.inference import (
    QoeInferenceModel,
    spearman_correlation,
)


class TestModel:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5
        model = QoeInferenceModel(ridge=0.0)
        model.fit(x, y)
        predictions = model.predict(x)
        assert np.allclose(predictions, y, atol=1e-8)

    def test_noise_yields_nonzero_error(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 3))
        y = x[:, 0] + rng.normal(scale=0.5, size=300)
        model = QoeInferenceModel()
        model.fit(x[:200], y[:200])
        report = model.evaluate(x[200:], y[200:])
        assert 0.1 < report.mae < 1.0
        assert report.spearman > 0.5

    def test_constant_feature_handled(self):
        x = [[1.0, 5.0], [1.0, 6.0], [1.0, 7.0]]
        y = [1.0, 2.0, 3.0]
        model = QoeInferenceModel()
        model.fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            QoeInferenceModel().predict([[1.0]])

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            QoeInferenceModel().fit([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            QoeInferenceModel().fit([[1.0]], [1.0, 2.0])

    def test_negative_ridge_rejected(self):
        with pytest.raises(ValueError):
            QoeInferenceModel(ridge=-1.0)


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert spearman_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_one(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [1.0, 8.0, 27.0, 64.0]
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_constant_input_is_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_ties_averaged(self):
        value = spearman_correlation([1, 1, 2], [1, 2, 3])
        assert -1.0 <= value <= 1.0

    def test_matches_scipy(self):
        from scipy import stats

        rng = np.random.default_rng(3)
        x = rng.normal(size=50)
        y = x + rng.normal(scale=0.8, size=50)
        ours = spearman_correlation(x, y)
        theirs = stats.spearmanr(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)
