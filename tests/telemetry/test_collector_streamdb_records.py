"""Collector fan-out, the stream store, and beacon builders."""

import pytest

from repro.telemetry.aggregate import AggregateRow
from repro.telemetry.collector import Collector
from repro.telemetry.records import SessionRecord, record_from_qoe
from repro.telemetry.streamdb import TimeSeriesStore
from repro.video.qoe import QoeMetrics


def _row(window_start, group=("x",), count=5, mean=0.1):
    return AggregateRow(
        window_start=window_start,
        window_s=10.0,
        group=group,
        count=count,
        means={"m": mean},
        mins={"m": mean},
        maxs={"m": mean},
        variances={"m": 0.0},
    )


class TestCollector:
    def test_fan_out_to_subscribers(self):
        collector = Collector()
        seen = []
        collector.subscribe(seen.append)
        record = SessionRecord(time=1.0)
        collector.ingest(record)
        assert seen == [record]
        assert collector.ingested == 1

    def test_recent_with_filter(self):
        collector = Collector()
        collector.ingest_many(
            SessionRecord(time=t, attrs={"cdn": "x" if t < 2 else "y"})
            for t in range(4)
        )
        matched = collector.recent(where=lambda r: r.attr("cdn") == "y")
        assert len(matched) == 2

    def test_retention_bounded(self):
        collector = Collector(retention=3)
        collector.ingest_many(SessionRecord(time=t) for t in range(10))
        assert len(collector.recent(limit=100)) == 3

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            Collector(retention=0)


class TestStore:
    def test_latest_and_series(self):
        store = TimeSeriesStore()
        store.append(_row(0.0, mean=0.1))
        store.append(_row(10.0, mean=0.3))
        assert store.latest(("x",)).mean("m") == 0.3
        assert len(store.series(("x",))) == 2
        assert len(store.series(("x",), since=10.0)) == 1

    def test_mean_over_weighted_by_count(self):
        store = TimeSeriesStore()
        store.append(_row(0.0, count=1, mean=0.0))
        store.append(_row(10.0, count=3, mean=1.0))
        assert store.mean_over(("x",), "m", last_n=2) == pytest.approx(0.75)

    def test_mean_over_empty(self):
        assert TimeSeriesStore().mean_over(("x",), "m") is None

    def test_scan_filters_groups(self):
        store = TimeSeriesStore()
        store.append(_row(0.0, group=("a", "1")))
        store.append(_row(0.0, group=("b", "2")))
        hits = store.scan(where=lambda g: g[0] == "a")
        assert len(hits) == 1

    def test_retention(self):
        store = TimeSeriesStore(retention_rows=2)
        for i in range(5):
            store.append(_row(float(i)))
        assert len(store.series(("x",))) == 2


class TestBeaconBuilders:
    def test_record_from_qoe_fields(self):
        qoe = QoeMetrics(
            session_id="s",
            join_time_s=1.0,
            play_time_s=90.0,
            rebuffer_time_s=10.0,
            mean_bitrate_mbps=3.0,
        )
        record = record_from_qoe(time=100.0, qoe=qoe, cdn="cdnX", isp="isp1")
        assert record.attr("cdn") == "cdnX"
        assert record.metric("buffering_ratio") == pytest.approx(0.1)
        assert record.metric("abandoned") == 0.0

    def test_never_joined_encodes_sentinel(self):
        qoe = QoeMetrics(session_id="s", abandoned=True)
        record = record_from_qoe(time=1.0, qoe=qoe, cdn="x")
        assert record.metric("join_time_s") == -1.0
        assert record.metric("abandoned") == 1.0
