"""Fluid network end-to-end: transfers, sharing, rerouting, policies."""

import math

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology


class TestSingleTransfer:
    def test_completion_time_is_size_over_bottleneck(self, sim, net):
        done = []
        net.start_transfer(
            "server", "client", size_mbit=10.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        assert done == [pytest.approx(2.0)]  # bottleneck r1->r2 = 5 Mbps

    def test_zero_size_completes_immediately(self, sim, net):
        done = []
        net.start_transfer(
            "server", "client", size_mbit=0.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        assert done == [0.0]

    def test_demand_cap_slows_transfer(self, sim, net):
        done = []
        net.start_transfer(
            "server", "client", size_mbit=10.0, demand_mbps=1.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_mean_throughput(self, sim, net):
        transfers = []
        net.start_transfer(
            "server", "client", size_mbit=10.0,
            on_complete=transfers.append,
        )
        sim.run()
        assert transfers[0].mean_throughput_mbps() == pytest.approx(5.0)


class TestSharing:
    def test_two_transfers_share_fairly(self, sim, net):
        done = []
        for name in ("a", "b"):
            net.start_transfer(
                "server", "client", size_mbit=5.0,
                on_complete=lambda t, n=name: done.append((n, sim.now)),
            )
        sim.run()
        # Each gets 2.5 Mbps; both finish at t=2.
        assert [t for _, t in done] == [pytest.approx(2.0)] * 2

    def test_rates_rebalance_when_flow_completes(self, sim, net):
        done = []
        net.start_transfer(
            "server", "client", size_mbit=2.5,
            on_complete=lambda t: done.append(("small", sim.now)),
        )
        net.start_transfer(
            "server", "client", size_mbit=7.5,
            on_complete=lambda t: done.append(("big", sim.now)),
        )
        sim.run()
        # Shared until t=1 (2.5 each); big then gets 5 Mbps for 5 Mbit.
        assert done[0] == ("small", pytest.approx(1.0))
        assert done[1] == ("big", pytest.approx(2.0))

    def test_later_arrival_steals_bandwidth(self, sim, net):
        done = []
        net.start_transfer(
            "server", "client", size_mbit=10.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.schedule(1.0, lambda: net.start_transfer("server", "client", 100.0))
        sim.run(until=10.0)
        # First flow: 5 Mbit in the first second, then 2.5 Mbps.
        assert done == [pytest.approx(3.0)]


class TestControls:
    def test_abort_stops_flow(self, sim, net):
        done = []
        transfer = net.start_transfer(
            "server", "client", size_mbit=10.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.schedule(0.5, lambda: net.abort(transfer))
        sim.run(until=10.0)
        assert done == []
        assert transfer.done

    def test_abort_idempotent(self, sim, net):
        transfer = net.start_transfer("server", "client", size_mbit=1.0)
        net.abort(transfer)
        net.abort(transfer)
        assert transfer.done

    def test_set_demand_midflight(self, sim, net):
        done = []
        transfer = net.start_transfer(
            "server", "client", size_mbit=10.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.schedule(1.0, lambda: net.set_demand(transfer, 1.0))
        sim.run()
        # 5 Mbit in first second, remaining 5 Mbit at 1 Mbps.
        assert done == [pytest.approx(6.0)]

    def test_capacity_change_reallocates(self, sim, net):
        done = []
        net.start_transfer(
            "server", "client", size_mbit=10.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.schedule(1.0, lambda: net.set_link_capacity("r1->r2", 1.0))
        sim.run()
        assert done == [pytest.approx(6.0)]

    def test_invalid_capacity_rejected(self, net):
        with pytest.raises(ValueError):
            net.set_link_capacity("r1->r2", 0.0)

    def test_negative_capacity_rejected(self, net):
        with pytest.raises(ValueError, match="capacity must be positive"):
            net.set_link_capacity("r1->r2", -5.0)
        # The failed call must not have touched the link.
        assert net.topology.link("r1->r2").capacity_mbps == 5.0


class TestViaPolicy:
    def _dual_path_net(self, sim):
        topo = Topology()
        topo.add_node("src", NodeKind.SERVER)
        topo.add_node("p1", NodeKind.PEERING)
        topo.add_node("p2", NodeKind.PEERING)
        topo.add_node("dst", NodeKind.CLIENT)
        topo.add_link("src", "p1", 10.0, delay_ms=1.0)
        topo.add_link("src", "p2", 10.0, delay_ms=9.0)
        topo.add_link("p1", "dst", 10.0, delay_ms=1.0)
        topo.add_link("p2", "dst", 10.0, delay_ms=9.0)
        return FluidNetwork(sim, topo)

    def test_policy_steers_new_flows(self, sim):
        net = self._dual_path_net(sim)
        net.set_via_policy("groupA", "p2")
        transfer = net.start_transfer("src", "dst", 10.0, owner="groupA")
        assert any(link.src == "p2" for link in transfer.flow.path)

    def test_policy_reroutes_active_flows(self, sim):
        net = self._dual_path_net(sim)
        transfer = net.start_transfer("src", "dst", 10.0, owner="groupA")
        assert any(link.src == "p1" for link in transfer.flow.path)
        net.set_via_policy("groupA", "p2")
        assert any(link.src == "p2" for link in transfer.flow.path)

    def test_explicit_via_wins_over_policy(self, sim):
        net = self._dual_path_net(sim)
        net.set_via_policy("groupA", "p2")
        transfer = net.start_transfer("src", "dst", 10.0, owner="groupA", via="p1")
        assert any(link.src == "p1" for link in transfer.flow.path)

    def test_clear_policy(self, sim):
        net = self._dual_path_net(sim)
        net.set_via_policy("groupA", "p2")
        net.set_via_policy("groupA", None)
        transfer = net.start_transfer("src", "dst", 10.0, owner="groupA")
        assert any(link.src == "p1" for link in transfer.flow.path)

    def test_transfers_by_owner(self, sim):
        net = self._dual_path_net(sim)
        net.start_transfer("src", "dst", 10.0, owner="groupA")
        net.start_transfer("src", "dst", 10.0, owner="groupB")
        assert len(net.transfers_by_owner("groupA")) == 1


class TestAccounting:
    def test_link_utilization_integral(self, sim, net):
        net.start_transfer("server", "client", size_mbit=10.0)
        sim.run(until=4.0)
        net.sync()
        stats = net.link_stats["r1->r2"]
        # Link ran at 5/5 = 100% for 2 s out of 4 s observed.
        assert stats.mean_utilization == pytest.approx(0.5)

    def test_completed_counter(self, sim, net):
        for _ in range(3):
            net.start_transfer("server", "client", size_mbit=1.0)
        sim.run()
        assert net.completed_transfers == 3

    def test_rtt_helper(self, net):
        # No reverse links in the line topology: rtt requires both ways.
        import pytest as _pytest
        from repro.network.routing import NoRouteError

        with _pytest.raises(NoRouteError):
            net.path_rtt_ms("server", "client")
