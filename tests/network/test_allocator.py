"""Unit tests for the stateful incremental allocation engine."""

import math

import pytest

from repro.network.allocator import AllocationEngine, EngineConfig
from repro.network.flows import Flow
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import Link, NodeKind, Topology
from repro.simkernel.kernel import Simulator

EPS = 1e-6


def _link(link_id, capacity):
    return Link(link_id=link_id, src="a", dst="b", capacity_mbps=capacity)


def _flow(flow_id, path, demand=math.inf):
    return Flow(flow_id=flow_id, src="a", dst="b", path=path, demand_mbps=demand)


class TestBookkeeping:
    def test_single_link_fair_share(self):
        engine = AllocationEngine()
        link = _link("l", 9.0)
        flows = [_flow(f"f{i}", [link]) for i in range(3)]
        for flow in flows:
            engine.add_flow(flow)
        result = engine.solve()
        assert all(abs(result.rates[f.flow_id] - 3.0) < EPS for f in flows)
        assert abs(engine.link_loads["l"] - 9.0) < EPS
        assert "l" in result.changed_links
        engine.check_consistency(flows)

    def test_remove_flow_drains_load_and_reports_link(self):
        engine = AllocationEngine()
        link = _link("l", 10.0)
        f1, f2 = _flow("f1", [link]), _flow("f2", [link])
        engine.add_flow(f1)
        engine.add_flow(f2)
        engine.solve()
        engine.remove_flow(f1)
        result = engine.solve()
        assert "l" in result.changed_links
        assert abs(result.rates["f2"] - 10.0) < EPS
        assert abs(engine.link_loads["l"] - 10.0) < EPS
        engine.check_consistency([f2])

    def test_remove_is_idempotent(self):
        engine = AllocationEngine()
        flow = _flow("f", [_link("l", 5.0)])
        engine.add_flow(flow)
        engine.remove_flow(flow)
        engine.remove_flow(flow)
        assert engine.active_flow_count() == 0

    def test_duplicate_add_rejected(self):
        engine = AllocationEngine()
        flow = _flow("f", [_link("l", 5.0)])
        engine.add_flow(flow)
        with pytest.raises(ValueError):
            engine.add_flow(flow)

    def test_set_path_moves_load_between_links(self):
        engine = AllocationEngine()
        old, new = _link("old", 10.0), _link("new", 10.0)
        flow = _flow("f", [old])
        engine.add_flow(flow)
        engine.solve()
        assert abs(engine.link_loads["old"] - 10.0) < EPS
        engine.set_path(flow, [new])
        result = engine.solve()
        assert flow.path == [new]
        assert {"old", "new"} <= result.changed_links
        assert abs(engine.link_loads["old"]) < EPS
        assert abs(engine.link_loads["new"] - 10.0) < EPS
        engine.check_consistency([flow])

    def test_drained_link_load_is_exactly_zero(self):
        engine = AllocationEngine()
        link = _link("l", 10.0)
        flows = [_flow(f"f{i}", [link], demand=3.3) for i in range(3)]
        for flow in flows:
            engine.add_flow(flow)
            engine.solve()
        for flow in flows:
            engine.remove_flow(flow)
        result = engine.solve()
        assert engine.link_loads["l"] == 0.0
        assert "l" in result.changed_links

    def test_demand_change_reallocates(self):
        engine = AllocationEngine()
        link = _link("l", 10.0)
        small, big = _flow("small", [link], demand=5.0), _flow("big", [link])
        engine.add_flow(small)
        engine.add_flow(big)
        engine.solve()
        small.demand_mbps = 1.0
        engine.update_demand(small)
        result = engine.solve()
        assert abs(result.rates["small"] - 1.0) < EPS
        assert abs(result.rates["big"] - 9.0) < EPS

    def test_capacity_change_reallocates(self):
        engine = AllocationEngine()
        link = _link("l", 10.0)
        flow = _flow("f", [link])
        engine.add_flow(flow)
        engine.solve()
        link.capacity_mbps = 4.0
        engine.update_capacity("l")
        result = engine.solve()
        assert abs(result.rates["f"] - 4.0) < EPS

    def test_max_rate_cap_applies(self):
        engine = AllocationEngine(EngineConfig(max_rate_mbps=2.5))
        flow = _flow("f", [_link("l", 100.0)])
        engine.add_flow(flow)
        result = engine.solve()
        assert abs(result.rates["f"] - 2.5) < EPS


class TestSolveModes:
    def test_noop_when_nothing_dirty(self):
        engine = AllocationEngine()
        flow = _flow("f", [_link("l", 5.0)])
        engine.add_flow(flow)
        engine.solve()
        result = engine.solve()
        assert result.mode == "noop"
        assert engine.counters.noop_solves == 1

    def test_disjoint_component_not_touched(self):
        engine = AllocationEngine(EngineConfig(full_solve_fraction=0.9))
        left = [_flow(f"L{i}", [_link("ll", 10.0)]) for i in range(2)]
        right = [_flow(f"R{i}", [_link("rl", 10.0)]) for i in range(2)]
        for flow in left + right:
            engine.add_flow(flow)
        engine.solve()  # full: everything dirty on first solve
        left[0].demand_mbps = 1.0
        engine.update_demand(left[0])
        result = engine.solve()
        assert result.mode == "incremental"
        # Only the left component's flows were re-solved.
        assert set(result.rates) == {"L0", "L1"}
        assert "rl" not in result.changed_links

    def test_full_solve_fallback_when_component_spans_network(self):
        engine = AllocationEngine(EngineConfig(full_solve_fraction=0.6))
        shared = _link("shared", 10.0)
        flows = [_flow(f"f{i}", [shared]) for i in range(4)]
        for flow in flows:
            engine.add_flow(flow)
        engine.solve()
        flows[0].demand_mbps = 1.0
        engine.update_demand(flows[0])
        result = engine.solve()
        # All four flows share one link: the component is the whole
        # network, so the engine falls back to a full solve.
        assert result.mode == "full"

    def test_incremental_disabled_forces_full(self):
        engine = AllocationEngine(EngineConfig(incremental=False))
        left = _flow("L", [_link("ll", 10.0)])
        right = _flow("R", [_link("rl", 10.0)])
        engine.add_flow(left)
        engine.add_flow(right)
        engine.solve()
        left.demand_mbps = 1.0
        engine.update_demand(left)
        result = engine.solve()
        assert result.mode == "full"
        assert engine.counters.incremental_solves == 0
        assert engine.counters.full_solves == 2

    def test_counters_accumulate(self):
        engine = AllocationEngine()
        link = _link("l", 10.0)
        flows = [_flow(f"f{i}", [link]) for i in range(3)]
        for flow in flows:
            engine.add_flow(flow)
            engine.solve()
        counters = engine.counters.as_dict()
        assert counters["solve_calls"] == 3
        assert counters["flows_active_peak"] == 3
        assert counters["flows_touched"] == 1 + 2 + 3
        assert (
            counters["full_solves"]
            + counters["incremental_solves"]
            + counters["noop_solves"]
            == counters["solve_calls"]
        )


class TestNetworkIntegration:
    def _network(self):
        sim = Simulator(seed=7)
        topo = Topology("t")
        topo.add_node("a", NodeKind.SERVER)
        topo.add_node("b", NodeKind.CLIENT)
        topo.add_link("a", "b", 10.0, delay_ms=1)
        return sim, FluidNetwork(sim, topo)

    def test_allocation_counters_exposed(self):
        sim, net = self._network()
        net.start_transfer("a", "b", size_mbit=10.0)
        sim.run(until=10.0)
        counters = net.allocation_counters()
        for key in (
            "solve_calls",
            "full_solves",
            "incremental_solves",
            "noop_solves",
            "flows_touched",
            "flows_active_peak",
            "router_cache_hits",
            "router_cache_misses",
        ):
            assert key in counters
        assert counters["solve_calls"] >= 1
        assert counters["flows_active_peak"] >= 1
        assert net.completed_transfers == 1

    def test_router_cache_invalidated_by_topology_growth(self):
        sim, net = self._network()
        net.start_transfer("a", "b", size_mbit=1.0)
        net.start_transfer("a", "b", size_mbit=1.0)
        assert net.router.cache_hits >= 1
        # Structural change: the cached shortest paths may be stale.
        net.topology.add_node("c", NodeKind.ROUTER)
        net.topology.add_link("b", "c", 10.0, delay_ms=1)
        hits_before = net.router.cache_hits
        net.start_transfer("a", "b", size_mbit=1.0)
        assert net.router.cache_misses >= 2  # recomputed after invalidation
        assert net.router.cache_hits == hits_before
