"""Router: shortest, via-constrained, and k-shortest paths."""

import pytest

from repro.network.routing import NoRouteError, Router
from repro.network.topology import Topology


def _diamond():
    """a -> (b | c) -> d, with the b branch faster."""
    topo = Topology()
    for node in "abcd":
        topo.add_node(node)
    topo.add_link("a", "b", 10.0, delay_ms=1.0)
    topo.add_link("b", "d", 10.0, delay_ms=1.0)
    topo.add_link("a", "c", 10.0, delay_ms=5.0)
    topo.add_link("c", "d", 10.0, delay_ms=5.0)
    return topo


class TestShortest:
    def test_picks_lower_delay_branch(self):
        router = Router(_diamond())
        assert router.shortest_path("a", "d") == ["a", "b", "d"]

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_node("x")
        topo.add_node("y")
        router = Router(topo)
        with pytest.raises(NoRouteError):
            router.shortest_path("x", "y")

    def test_unknown_node_raises(self):
        router = Router(_diamond())
        with pytest.raises(NoRouteError):
            router.shortest_path("a", "ghost")


class TestVia:
    def test_via_forces_slow_branch(self):
        router = Router(_diamond())
        assert router.path_via("a", "d", via="c") == ["a", "c", "d"]

    def test_via_equals_endpoint(self):
        router = Router(_diamond())
        assert router.path_via("a", "d", via="d") == ["a", "b", "d"]


class TestKShortest:
    def test_returns_in_delay_order(self):
        router = Router(_diamond())
        paths = router.k_shortest_paths("a", "d", k=2)
        assert paths == [["a", "b", "d"], ["a", "c", "d"]]

    def test_k_larger_than_available(self):
        router = Router(_diamond())
        assert len(router.k_shortest_paths("a", "d", k=10)) == 2

    def test_k_non_positive_rejected(self):
        router = Router(_diamond())
        with pytest.raises(ValueError):
            router.k_shortest_paths("a", "d", k=0)


class TestCache:
    def test_cached_path_is_copied(self):
        router = Router(_diamond())
        first = router.shortest_path("a", "d")
        first.append("tampered")
        assert router.shortest_path("a", "d") == ["a", "b", "d"]

    def test_invalidate_clears(self):
        router = Router(_diamond())
        router.shortest_path("a", "d")
        router.invalidate()
        assert router._cache == {}
