"""Property test: the incremental engine matches from-scratch max-min.

The engine's correctness argument is that max-min allocation decomposes
over connected components of the flow–link graph, so re-solving only
the dirty component is exact.  This test drives the engine through long
seeded-random churn sequences — flow starts, finishes, demand changes,
capacity changes, and reroutes — and after every step compares every
active flow's applied rate against a from-scratch
:func:`max_min_allocation` over the full flow set, to 1e-6.
"""

import math
import random

import pytest

from repro.network.allocator import AllocationEngine, EngineConfig
from repro.network.flows import Flow
from repro.network.maxmin import max_min_allocation
from repro.network.topology import Link

TOL = 1e-6


def _make_links(rng, n_links):
    return [
        Link(
            link_id=f"l{i}",
            src=f"n{i}",
            dst=f"n{i+1}",
            capacity_mbps=rng.uniform(1.0, 100.0),
        )
        for i in range(n_links)
    ]


def _random_path(rng, links):
    count = rng.randint(1, min(4, len(links)))
    return rng.sample(links, count)


def _assert_rates_match(engine, flows):
    """Engine's applied rates == from-scratch solve over all flows."""
    raw = max_min_allocation(flows)
    cap = engine.config.max_rate_mbps
    for flow in flows:
        expected = min(raw.get(flow.flow_id, 0.0), cap)
        actual = engine.rates.get(flow.flow_id, 0.0)
        assert actual == pytest.approx(expected, abs=TOL), (
            f"flow {flow.flow_id}: engine={actual} scratch={expected}"
        )


def _churn(seed, steps=120, n_links=8, config=None):
    rng = random.Random(seed)
    links = _make_links(rng, n_links)
    engine = AllocationEngine(config or EngineConfig())
    flows = {}
    counter = 0
    for _ in range(steps):
        ops = ["add", "add", "remove", "demand", "capacity", "reroute"]
        op = rng.choice(ops)
        if op == "add" or not flows:
            counter += 1
            demand = math.inf if rng.random() < 0.5 else rng.uniform(0.5, 50.0)
            flow = Flow(
                flow_id=f"f{counter}",
                src="a",
                dst="b",
                path=_random_path(rng, links),
                demand_mbps=demand,
            )
            flows[flow.flow_id] = flow
            engine.add_flow(flow)
        elif op == "remove":
            flow = flows.pop(rng.choice(sorted(flows)))
            engine.remove_flow(flow)
        elif op == "demand":
            flow = flows[rng.choice(sorted(flows))]
            flow.demand_mbps = (
                math.inf if rng.random() < 0.3 else rng.uniform(0.5, 50.0)
            )
            engine.update_demand(flow)
        elif op == "capacity":
            link = rng.choice(links)
            link.capacity_mbps = rng.uniform(1.0, 100.0)
            engine.update_capacity(link.link_id)
        elif op == "reroute":
            flow = flows[rng.choice(sorted(flows))]
            engine.set_path(flow, _random_path(rng, links))
        engine.solve()
        engine.check_consistency(flows.values())
        _assert_rates_match(engine, list(flows.values()))
    return engine


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_incremental_matches_scratch_under_churn(seed):
    engine = _churn(seed)
    # The sequences must actually exercise the incremental path for the
    # equivalence claim to mean anything.
    assert engine.counters.incremental_solves > 0


@pytest.mark.parametrize("seed", [0, 1])
def test_low_fallback_threshold_still_exact(seed):
    # An aggressive threshold keeps almost every solve incremental.
    _churn(seed, config=EngineConfig(full_solve_fraction=0.95))


@pytest.mark.parametrize("seed", [0, 1])
def test_non_incremental_baseline_matches_scratch(seed):
    engine = _churn(seed, steps=60, config=EngineConfig(incremental=False))
    assert engine.counters.incremental_solves == 0
