"""Link statistics integration and congestion detection hysteresis."""

import pytest

from repro.network.linkstats import CongestionDetector, LinkStats


class TestLinkStats:
    def test_piecewise_integration(self):
        stats = LinkStats("l", capacity_mbps=10.0)
        stats.set_load(5.0)
        stats.advance(2.0)   # 5 Mbps for 2 s -> 10 Mbit
        stats.set_load(10.0)
        stats.advance(3.0)   # 10 Mbps for 1 s -> 10 Mbit
        assert stats.mbit_carried == pytest.approx(20.0)
        assert stats.mean_utilization == pytest.approx(20.0 / 30.0)

    def test_busy_fraction(self):
        stats = LinkStats("l", capacity_mbps=10.0)
        stats.set_load(10.0)
        stats.advance(1.0)
        stats.set_load(1.0)
        stats.advance(2.0)
        assert stats.congested_fraction == pytest.approx(0.5)

    def test_time_backwards_rejected(self):
        stats = LinkStats("l", 10.0)
        stats.advance(5.0)
        with pytest.raises(ValueError):
            stats.advance(4.0)

    def test_utilization_instantaneous(self):
        stats = LinkStats("l", 10.0)
        stats.set_load(2.5)
        assert stats.utilization == 0.25


class TestCongestionDetector:
    def test_triggers_above_threshold(self):
        detector = CongestionDetector(threshold=0.9, alpha=1.0)
        assert not detector.observe(0.5)
        assert detector.observe(0.95)

    def test_hysteresis_holds_until_clear_threshold(self):
        detector = CongestionDetector(threshold=0.9, clear_threshold=0.5, alpha=1.0)
        detector.observe(0.95)
        assert detector.observe(0.7)      # between thresholds: still congested
        assert not detector.observe(0.4)  # below clear: released

    def test_ewma_smooths_spikes(self):
        detector = CongestionDetector(threshold=0.9, alpha=0.3)
        # One spike must not trigger with low alpha.
        assert not detector.observe(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CongestionDetector(threshold=0.0)
        with pytest.raises(ValueError):
            CongestionDetector(alpha=0.0)
        with pytest.raises(ValueError):
            CongestionDetector(threshold=0.5, clear_threshold=0.9)
