"""Weighted traffic splits in the fluid network and the TE app."""

import pytest

from repro.network.fluidsim import FluidNetwork, _SplitState
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator


def _dual_path(sim):
    topo = Topology()
    topo.add_node("src", NodeKind.SERVER)
    topo.add_node("p1", NodeKind.PEERING)
    topo.add_node("p2", NodeKind.PEERING)
    topo.add_node("dst", NodeKind.CLIENT)
    topo.add_link("src", "p1", 100.0, delay_ms=1.0)
    topo.add_link("src", "p2", 100.0, delay_ms=9.0)
    topo.add_link("p1", "dst", 100.0, delay_ms=1.0)
    topo.add_link("p2", "dst", 100.0, delay_ms=9.0)
    return FluidNetwork(sim, topo)


def _via_of(transfer):
    return transfer.flow.path[0].dst


class TestSplitState:
    def test_even_split_alternates(self):
        state = _SplitState({"a": 0.5, "b": 0.5})
        draws = [state.next_via() for _ in range(10)]
        assert draws.count("a") == 5
        assert draws.count("b") == 5

    def test_weighted_split_tracks_weights(self):
        state = _SplitState({"a": 0.75, "b": 0.25})
        draws = [state.next_via() for _ in range(40)]
        assert draws.count("a") == 30
        assert draws.count("b") == 10

    def test_deterministic(self):
        first = [_SplitState({"a": 0.6, "b": 0.4}).next_via() for _ in range(1)]
        second = [_SplitState({"a": 0.6, "b": 0.4}).next_via() for _ in range(1)]
        assert first == second

    def test_equal_weight_ties_break_to_smallest_via(self):
        # Ties go to the lexicographically smallest via name, regardless
        # of dict insertion order.
        state = _SplitState({"b": 0.5, "a": 0.5})
        assert state.next_via() == "a"
        assert state.next_via() == "b"
        assert state.next_via() == "a"
        assert state.next_via() == "b"

    def test_assignment_independent_of_insertion_order(self):
        forward = _SplitState({"a": 0.5, "b": 0.5})
        backward = _SplitState({"b": 0.5, "a": 0.5})
        assert [forward.next_via() for _ in range(12)] == [
            backward.next_via() for _ in range(12)
        ]

    def test_three_way_tie_cycles_alphabetically(self):
        state = _SplitState({"c": 1 / 3, "a": 1 / 3, "b": 1 / 3})
        draws = [state.next_via() for _ in range(6)]
        assert draws == ["a", "b", "c", "a", "b", "c"]


class TestNetworkSplits:
    def test_new_flows_follow_weights(self, sim):
        net = _dual_path(sim)
        net.set_split_policy("g", {"p1": 0.5, "p2": 0.5})
        transfers = [
            net.start_transfer("src", "dst", 10.0, owner="g") for _ in range(8)
        ]
        vias = [_via_of(t) for t in transfers]
        assert vias.count("p1") == 4
        assert vias.count("p2") == 4

    def test_active_flows_rebalanced(self, sim):
        net = _dual_path(sim)
        transfers = [
            net.start_transfer("src", "dst", 1000.0, owner="g") for _ in range(6)
        ]
        assert all(_via_of(t) == "p1" for t in transfers)  # shortest path
        net.set_split_policy("g", {"p1": 0.5, "p2": 0.5})
        vias = [_via_of(t) for t in transfers]
        assert vias.count("p1") == 3
        assert vias.count("p2") == 3

    def test_split_policy_query(self, sim):
        net = _dual_path(sim)
        assert net.split_policy("g") is None
        net.set_split_policy("g", {"p1": 3.0, "p2": 1.0})
        assert net.split_policy("g") == {"p1": 0.75, "p2": 0.25}

    def test_via_policy_clears_split(self, sim):
        net = _dual_path(sim)
        net.set_split_policy("g", {"p1": 0.5, "p2": 0.5})
        net.set_via_policy("g", "p2")
        assert net.split_policy("g") is None
        transfer = net.start_transfer("src", "dst", 10.0, owner="g")
        assert _via_of(transfer) == "p2"

    def test_invalid_weights(self, sim):
        net = _dual_path(sim)
        with pytest.raises(ValueError):
            net.set_split_policy("g", {})
        with pytest.raises(ValueError):
            net.set_split_policy("g", {"p1": -1.0, "p2": 2.0})
        with pytest.raises(ValueError):
            net.set_split_policy("g", {"p1": 0.0})


class TestTeSplits:
    def _te_world(self):
        sim = Simulator(seed=0)
        topo = Topology()
        topo.add_node("cdn", NodeKind.SERVER, owner="cdn")
        topo.add_node("B", NodeKind.PEERING, owner="isp")
        topo.add_node("C", NodeKind.PEERING, owner="isp")
        topo.add_node("core", NodeKind.ROUTER, owner="isp")
        topo.add_node("client", NodeKind.CLIENT, owner="isp")
        topo.add_link("cdn", "B", 1000.0, delay_ms=1.0)
        topo.add_link("cdn", "C", 1000.0, delay_ms=5.0)
        topo.add_link("B", "core", 10.0, tags=("peering",))
        topo.add_link("C", "core", 10.0, tags=("peering",))
        topo.add_link("core", "client", 1000.0)
        net = FluidNetwork(sim, topo)
        from repro.sdn.controller import SdnController
        from repro.sdn.stats import StatsService
        from repro.sdn.te import EgressGroup, TrafficEngineeringApp

        controller = SdnController(net, owner="isp")
        stats = StatsService(sim, controller, period=2.0)
        group = EgressGroup(
            name="cdn", remote="cdn", candidates=["B", "C"],
            egress_links={"B": "B->core", "C": "C->core"},
        )
        return sim, net, controller, stats, group, TrafficEngineeringApp

    def test_policy_may_return_split(self):
        sim, net, controller, stats, group, TE = self._te_world()
        te = TE(
            sim, net, controller, stats, [group], period=10.0,
            policy=lambda app, g: {"B": 0.5, "C": 0.5},
        )
        sim.run(until=15.0)
        assert group.split == {"B": 0.5, "C": 0.5}
        assert net.split_policy("cdn") == {"B": 0.5, "C": 0.5}
        assert te.switch_count("cdn") == 1  # logged as one decision

    def test_split_with_non_candidate_rejected(self):
        sim, net, controller, stats, group, TE = self._te_world()
        TE(
            sim, net, controller, stats, [group], period=10.0,
            policy=lambda app, g: {"B": 0.5, "nonsense": 0.5},
        )
        with pytest.raises(ValueError):
            sim.run(until=15.0)

    def test_single_selection_clears_split(self):
        sim, net, controller, stats, group, TE = self._te_world()
        answers = [{"B": 0.5, "C": 0.5}, "C"]

        def policy(app, g):
            return answers[0] if app.sim.now < 15.0 else answers[1]

        TE(sim, net, controller, stats, [group], period=10.0, policy=policy)
        sim.run(until=25.0)
        assert group.split is None
        assert group.selection == "C"
        assert net.split_policy("cdn") is None
