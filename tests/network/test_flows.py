"""Flow object state machine and progress accounting."""

import math

import pytest

from repro.network.flows import Flow, FlowState
from repro.network.topology import Link


def _link():
    return Link("l", "a", "b", capacity_mbps=10.0)


class TestValidation:
    def test_non_positive_demand_rejected(self):
        with pytest.raises(ValueError):
            Flow("f", "a", "b", [], demand_mbps=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Flow("f", "a", "b", [], size_mbit=-1.0)


class TestProgress:
    def test_finite_transfer_decrements(self):
        flow = Flow("f", "a", "b", [_link()], size_mbit=10.0)
        flow.rate_mbps = 2.0
        delivered = flow.progress(3.0)
        assert delivered == 6.0
        assert flow.remaining_mbit == 4.0

    def test_progress_clamps_at_zero_remaining(self):
        flow = Flow("f", "a", "b", [_link()], size_mbit=5.0)
        flow.rate_mbps = 10.0
        delivered = flow.progress(100.0)
        assert delivered == 5.0
        assert flow.remaining_mbit == 0.0

    def test_time_backwards_rejected(self):
        flow = Flow("f", "a", "b", [])
        flow.progress(5.0)
        with pytest.raises(ValueError):
            flow.progress(4.0)

    def test_persistent_flow_never_finishes(self):
        flow = Flow("f", "a", "b", [_link()], demand_mbps=3.0)
        flow.rate_mbps = 3.0
        flow.progress(1000.0)
        assert flow.remaining_mbit == math.inf
        assert flow.eta(1000.0) == math.inf


class TestEta:
    def test_eta_from_rate(self):
        flow = Flow("f", "a", "b", [_link()], size_mbit=10.0)
        flow.rate_mbps = 2.0
        assert flow.eta(now=1.0) == 6.0

    def test_eta_zero_rate_is_inf(self):
        flow = Flow("f", "a", "b", [_link()], size_mbit=10.0)
        assert flow.eta(0.0) == math.inf

    def test_done_reflects_state(self):
        flow = Flow("f", "a", "b", [])
        assert not flow.done
        flow.state = FlowState.ABORTED
        assert flow.done
