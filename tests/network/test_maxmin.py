"""Max-min fairness: exact cases plus property-based invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.network.flows import Flow
from repro.network.maxmin import max_min_allocation
from repro.network.topology import Link

EPS = 1e-6


def _link(link_id, capacity):
    return Link(link_id=link_id, src="a", dst="b", capacity_mbps=capacity)


def _flow(flow_id, path, demand=math.inf):
    return Flow(flow_id=flow_id, src="a", dst="b", path=path, demand_mbps=demand)


class TestExactCases:
    def test_equal_split_on_single_link(self):
        link = _link("l", 9.0)
        flows = [_flow(f"f{i}", [link]) for i in range(3)]
        rates = max_min_allocation(flows)
        assert all(abs(rates[f.flow_id] - 3.0) < EPS for f in flows)

    def test_demand_limited_flow_releases_share(self):
        link = _link("l", 10.0)
        small = _flow("small", [link], demand=1.0)
        big = _flow("big", [link])
        rates = max_min_allocation([small, big])
        assert abs(rates["small"] - 1.0) < EPS
        assert abs(rates["big"] - 9.0) < EPS

    def test_two_bottlenecks(self):
        # f1 on l1 only; f2 crosses l1 and l2; l2 is the tighter link.
        l1 = _link("l1", 10.0)
        l2 = _link("l2", 2.0)
        f1 = _flow("f1", [l1])
        f2 = _flow("f2", [l1, l2])
        rates = max_min_allocation([f1, f2])
        assert abs(rates["f2"] - 2.0) < EPS
        assert abs(rates["f1"] - 8.0) < EPS

    def test_classic_parking_lot(self):
        # One long flow across both links, one short flow per link.
        l1 = _link("l1", 10.0)
        l2 = _link("l2", 10.0)
        long = _flow("long", [l1, l2])
        s1 = _flow("s1", [l1])
        s2 = _flow("s2", [l2])
        rates = max_min_allocation([long, s1, s2])
        assert abs(rates["long"] - 5.0) < EPS
        assert abs(rates["s1"] - 5.0) < EPS
        assert abs(rates["s2"] - 5.0) < EPS

    def test_empty_path_gets_demand(self):
        flow = _flow("free", [], demand=7.0)
        assert max_min_allocation([flow])["free"] == 7.0

    def test_completed_flows_ignored(self):
        link = _link("l", 10.0)
        done = _flow("done", [link])
        from repro.network.flows import FlowState

        done.state = FlowState.COMPLETED
        active = _flow("active", [link])
        rates = max_min_allocation([done, active])
        assert "done" not in rates
        assert abs(rates["active"] - 10.0) < EPS

    def test_no_flows(self):
        assert max_min_allocation([]) == {}


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------
@st.composite
def _random_network(draw):
    n_links = draw(st.integers(min_value=1, max_value=6))
    links = [
        _link(f"l{i}", draw(st.floats(min_value=0.5, max_value=100.0)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        path_indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        demand = draw(
            st.one_of(
                st.just(math.inf), st.floats(min_value=0.1, max_value=50.0)
            )
        )
        flows.append(_flow(f"f{i}", [links[j] for j in path_indices], demand))
    return links, flows


@settings(max_examples=150, deadline=None)
@given(_random_network())
def test_feasibility_no_link_overloaded(network):
    links, flows = network
    rates = max_min_allocation(flows)
    for link in links:
        load = sum(
            rates[f.flow_id] for f in flows if link in f.path
        )
        assert load <= link.capacity_mbps + 1e-6


@settings(max_examples=150, deadline=None)
@given(_random_network())
def test_demand_caps_respected(network):
    _, flows = network
    rates = max_min_allocation(flows)
    for flow in flows:
        assert rates[flow.flow_id] <= flow.demand_mbps + 1e-6


@settings(max_examples=150, deadline=None)
@given(_random_network())
def test_rates_non_negative(network):
    _, flows = network
    rates = max_min_allocation(flows)
    assert all(rate >= 0 for rate in rates.values())


@settings(max_examples=150, deadline=None)
@given(_random_network())
def test_maxmin_bottleneck_condition(network):
    """Every flow below demand sits on a saturated link where it has a
    (weakly) maximal rate -- the defining property of max-min fairness."""
    links, flows = network
    rates = max_min_allocation(flows)
    loads = {
        link.link_id: sum(rates[f.flow_id] for f in flows if link in f.path)
        for link in links
    }
    for flow in flows:
        rate = rates[flow.flow_id]
        if rate >= flow.demand_mbps - 1e-6:
            continue  # demand-limited, fine
        bottlenecked = False
        for link in flow.path:
            saturated = loads[link.link_id] >= link.capacity_mbps - 1e-5
            if not saturated:
                continue
            max_on_link = max(
                rates[other.flow_id] for other in flows if link in other.path
            )
            if rate >= max_on_link - 1e-5:
                bottlenecked = True
                break
        assert bottlenecked, (
            f"{flow.flow_id} rate={rate} has no saturated bottleneck"
        )


@settings(max_examples=100, deadline=None)
@given(_random_network())
def test_allocation_deterministic(network):
    _, flows = network
    assert max_min_allocation(flows) == max_min_allocation(flows)


class TestWeighted:
    def test_rates_proportional_to_weights(self):
        link = _link("l", 9.0)
        heavy = Flow("heavy", "a", "b", [link], weight=2.0)
        light = Flow("light", "a", "b", [link], weight=1.0)
        rates = max_min_allocation([heavy, light])
        assert abs(rates["heavy"] - 6.0) < EPS
        assert abs(rates["light"] - 3.0) < EPS

    def test_cohort_weight_equals_expanded_flows(self):
        # One weight-n flow receives exactly what n weight-1 flows
        # sharing the bottleneck would in total -- the property the
        # cohort engine's network coupling relies on.
        link_a = _link("la", 10.0)
        cohort = Flow("cohort", "a", "b", [link_a], weight=3.0)
        solo_a = Flow("solo", "a", "b", [link_a])
        rates_aggregate = max_min_allocation([cohort, solo_a])

        link_b = _link("lb", 10.0)
        members = [Flow(f"m{i}", "a", "b", [link_b]) for i in range(3)]
        solo_b = Flow("solo", "a", "b", [link_b])
        rates_expanded = max_min_allocation(members + [solo_b])

        total_members = sum(rates_expanded[f"m{i}"] for i in range(3))
        assert abs(rates_aggregate["cohort"] - total_members) < EPS
        assert abs(rates_aggregate["solo"] - rates_expanded["solo"]) < EPS

    def test_demand_cap_trumps_weight(self):
        link = _link("l", 10.0)
        heavy = Flow("heavy", "a", "b", [link], demand_mbps=1.0, weight=10.0)
        light = Flow("light", "a", "b", [link], weight=1.0)
        rates = max_min_allocation([heavy, light])
        assert abs(rates["heavy"] - 1.0) < EPS
        assert abs(rates["light"] - 9.0) < EPS

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=20.0), min_size=2, max_size=8
        ),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_shared_bottleneck_per_weight_rates_equal(self, weights, capacity):
        link = _link("l", capacity)
        flows = [
            Flow(f"f{i}", "a", "b", [link], weight=w)
            for i, w in enumerate(weights)
        ]
        rates = max_min_allocation(flows)
        per_weight = [rates[f.flow_id] / f.weight for f in flows]
        assert sum(rates.values()) <= capacity + EPS
        for value in per_weight[1:]:
            assert abs(value - per_weight[0]) < 1e-6 * max(1.0, per_weight[0])

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=30.0), min_size=1, max_size=8
        ),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_unit_weights_reduce_to_unweighted(self, demands, capacity):
        link_a = _link("la", capacity)
        explicit = [
            Flow(f"f{i}", "a", "b", [link_a], demand_mbps=d, weight=1.0)
            for i, d in enumerate(demands)
        ]
        link_b = _link("lb", capacity)
        implicit = [
            _flow(f"f{i}", [link_b], demand=d) for i, d in enumerate(demands)
        ]
        rates_explicit = max_min_allocation(explicit)
        rates_implicit = max_min_allocation(implicit)
        for flow_id, rate in rates_implicit.items():
            assert abs(rates_explicit[flow_id] - rate) < EPS
