"""Topology construction, validation, and queries."""

import pytest

from repro.network.topology import Link, NodeKind, Topology


class TestConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_node("a")

    def test_link_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(KeyError):
            topo.add_link("a", "ghost", 10.0)

    def test_non_positive_capacity_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(ValueError):
            topo.add_link("a", "b", 0.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link("l", "a", "b", capacity_mbps=1.0, delay_ms=-1.0)

    def test_auto_link_ids_unique(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        first = topo.add_link("a", "b", 1.0)
        second = topo.add_link("a", "b", 1.0)
        assert first.link_id != second.link_id

    def test_duplex_adds_both_directions(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        forward, backward = topo.add_duplex_link("a", "b", 10.0)
        assert (forward.src, forward.dst) == ("a", "b")
        assert (backward.src, backward.dst) == ("b", "a")


class TestQueries(object):
    def _topo(self):
        topo = Topology()
        topo.add_node("s", NodeKind.SERVER, owner="cdn")
        topo.add_node("r", NodeKind.ROUTER, owner="isp")
        topo.add_node("c", NodeKind.CLIENT, owner="isp")
        topo.add_link("s", "r", 10.0, delay_ms=5.0, tags=("peering",))
        topo.add_link("r", "c", 5.0, delay_ms=2.0, tags=("access",), owner="isp")
        return topo

    def test_filter_nodes_by_kind(self):
        topo = self._topo()
        assert [n.node_id for n in topo.nodes(kind=NodeKind.CLIENT)] == ["c"]

    def test_filter_nodes_by_owner(self):
        topo = self._topo()
        assert {n.node_id for n in topo.nodes(owner="isp")} == {"r", "c"}

    def test_filter_links_by_tag(self):
        topo = self._topo()
        assert [l.link_id for l in topo.links(tag="access")] == ["r->c"]

    def test_link_between(self):
        topo = self._topo()
        assert topo.link_between("s", "r").capacity_mbps == 10.0
        with pytest.raises(KeyError):
            topo.link_between("c", "s")

    def test_path_links_and_delay(self):
        topo = self._topo()
        links = topo.path_links(["s", "r", "c"])
        assert [l.link_id for l in links] == ["s->r", "r->c"]
        assert topo.path_delay_ms(["s", "r", "c"]) == 7.0

    def test_len_and_iter(self):
        topo = self._topo()
        assert len(topo) == 3
        assert {n.node_id for n in topo} == {"s", "r", "c"}
