"""Failure injection and chaos properties of the fluid network.

A random interleaving of transfer starts, aborts, demand changes, and
link-capacity faults must never violate the substrate's invariants:
volumes conserved, link loads within capacity, completions exact.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator


def _grid_network(sim):
    """Two sources, two sinks, shared middle link."""
    topo = Topology()
    topo.add_node("s1", NodeKind.SERVER)
    topo.add_node("s2", NodeKind.SERVER)
    topo.add_node("m1", NodeKind.ROUTER)
    topo.add_node("m2", NodeKind.ROUTER)
    topo.add_node("d1", NodeKind.CLIENT)
    topo.add_node("d2", NodeKind.CLIENT)
    topo.add_link("s1", "m1", 20.0)
    topo.add_link("s2", "m1", 20.0)
    topo.add_link("m1", "m2", 15.0)
    topo.add_link("m2", "d1", 20.0)
    topo.add_link("m2", "d2", 20.0)
    return FluidNetwork(sim, topo)


_operation = st.tuples(
    st.sampled_from(["start", "abort", "demand", "capacity", "advance"]),
    st.integers(min_value=0, max_value=7),
    st.floats(min_value=0.5, max_value=30.0),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_operation, min_size=1, max_size=40), st.integers())
def test_chaos_invariants(operations, seed):
    sim = Simulator(seed=seed)
    net = _grid_network(sim)
    rng = random.Random(seed)
    live = []
    completed = []

    def on_done(transfer):
        completed.append(transfer)

    for op, index, value in operations:
        if op == "start":
            src = rng.choice(["s1", "s2"])
            dst = rng.choice(["d1", "d2"])
            live.append(
                net.start_transfer(src, dst, size_mbit=value, on_complete=on_done)
            )
        elif op == "abort" and live:
            net.abort(live[index % len(live)])
        elif op == "demand" and live:
            target = live[index % len(live)]
            if not target.done:
                net.set_demand(target, max(0.1, value))
        elif op == "capacity":
            link = rng.choice(["s1->m1", "m1->m2", "m2->d1"])
            net.set_link_capacity(link, max(0.5, value))
        elif op == "advance":
            sim.run(until=sim.now + value)

        # Invariant: no link carries more than its (current) capacity.
        net.sync()
        for link_id, stats in net.link_stats.items():
            assert stats.current_load_mbps <= stats.capacity_mbps * (1 + 1e-6)
        # Invariant: no flow has negative remaining volume.
        for flow in net.active_flows():
            assert flow.remaining_mbit >= -1e-9

    sim.run(until=sim.now + 10_000.0)
    # Every transfer either completed (exactly drained) or was aborted.
    for transfer in live:
        assert transfer.done
        if transfer.flow.finished_at is not None and transfer in completed:
            assert transfer.remaining_mbit == pytest.approx(0.0, abs=1e-6)


class TestFullStackDeterminism:
    def test_experiment_repeatable(self):
        from repro.experiments.exp_e1_coarse_control import run_mode
        from repro.baselines.modes import Mode

        first = run_mode(Mode.EONA, seed=3, n_clients=8, n_sessions=10,
                         horizon_s=400.0)
        second = run_mode(Mode.EONA, seed=3, n_clients=8, n_sessions=10,
                          horizon_s=400.0)
        assert first == second

    def test_different_seeds_differ(self):
        from repro.experiments.exp_e1_coarse_control import run_mode
        from repro.baselines.modes import Mode

        first = run_mode(Mode.EONA, seed=3, n_clients=8, n_sessions=10,
                         horizon_s=400.0)
        second = run_mode(Mode.EONA, seed=4, n_clients=8, n_sessions=10,
                          horizon_s=400.0)
        assert first != second
