"""Analytics unit tests: latency tables, Chrome export, bench gate."""

from __future__ import annotations

import json

import pytest

from repro.obs import analyze


def _ev(t, kind, cause=None, parent=None, parents=None, **fields):
    event = {"t": float(t), "kind": kind}
    if cause is not None:
        event["cause"] = cause
    if parent is not None:
        event["parent"] = parent
    if parents is not None:
        event["parents"] = parents
    event.update(fields)
    return event


def _loop_trace():
    return [
        _ev(0.0, "phase-transition", phase="ramp"),
        _ev(10.0, "a2i-report", cause=1, via="beacon"),
        _ev(12.0, "a2i-report", cause=2, via="beacon"),
        _ev(15.0, "agg-flush", cause=3, parents=[1, 2]),
        _ev(20.0, "i2a-hint", cause=4, parent=3),
        _ev(21.0, "cdn-switch", cause=5, parent=4, to_cdn="cdn-b"),
        _ev(30.0, "qoe-recovery", cause=6, parent=5),
    ]


class TestLoopLatencyRows:
    def test_rows_by_phase(self):
        rows = analyze.loop_latency_rows(_loop_trace(), by="phase")
        stages = [row["stage"] for row in rows]
        assert stages == [
            "beacon_to_flush",
            "beacon_to_hint",
            "hint_to_action",
            "action_to_recovery",
        ]
        flush = rows[0]
        assert flush["phase"] == "ramp"
        assert flush["count"] == 2
        assert flush["mean_s"] == pytest.approx(4.0)
        assert flush["max_s"] == pytest.approx(5.0)

    def test_rows_by_group(self):
        rows = analyze.loop_latency_rows(_loop_trace(), by="group")
        action = next(r for r in rows if r["stage"] == "hint_to_action")
        assert action["group"] == "cdn-b"

    def test_all_bucket_only_with_multiple_keys(self):
        events = _loop_trace() + [_ev(100.0, "phase-transition", phase="peak")]
        events += [
            _ev(110.0, "a2i-report", cause=7, via="beacon"),
            _ev(115.0, "agg-flush", cause=8, parents=[7]),
        ]
        rows = analyze.loop_latency_rows(events, by="phase")
        flush_rows = [r for r in rows if r["stage"] == "beacon_to_flush"]
        assert [r["phase"] for r in flush_rows] == ["peak", "ramp", "all"]
        assert flush_rows[-1]["count"] == 3

    def test_rejects_unknown_attribution(self):
        with pytest.raises(ValueError, match="attribution"):
            analyze.loop_latency_rows([], by="owner")

    def test_render_empty(self):
        assert "no loop-latency samples" in analyze.render_latency_table([])

    def test_render_table_alignment(self):
        text = analyze.render_latency_table(
            analyze.loop_latency_rows(_loop_trace())
        )
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert len({len(line) for line in lines[:2]}) == 1  # header == rule


class TestLoopMetricsSnapshot:
    def test_snapshot_shape_matches_registry(self):
        snap = analyze.loop_metrics_snapshot(_loop_trace())
        assert snap["counters"]["loop.beacon_to_flush_samples"] == 2
        histogram = snap["histograms"]["loop.hint_to_action"]
        assert set(histogram) == {
            "edges",
            "counts",
            "total",
            "sum",
            "p50",
            "p95",
            "p99",
        }
        assert histogram["total"] == 1
        assert histogram["sum"] == pytest.approx(1.0)
        assert histogram["edges"] == list(analyze.LOOP_LATENCY_EDGES)

    def test_empty_stages_are_omitted(self):
        snap = analyze.loop_metrics_snapshot([])
        assert snap == {"counters": {}, "histograms": {}}


class TestSlowestSpans:
    def test_ancestry_on_slowest(self):
        entries = analyze.slowest_spans(_loop_trace(), top=1)
        recovery = next(
            e for e in entries if e["stage"] == "action_to_recovery"
        )
        assert recovery["latency_s"] == pytest.approx(9.0)
        assert recovery["ancestry"][0] == "qoe-recovery@t=30"
        assert recovery["ancestry"][-1] == "a2i-report@t=10"
        text = analyze.render_slowest(entries)
        assert "action_to_recovery: 9.00s" in text

    def test_render_no_spans(self):
        assert analyze.render_slowest([]) == "(no spans)"


class TestChromeTrace:
    def test_export_shape(self):
        doc = analyze.chrome_trace(_loop_trace())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        records = doc["traceEvents"]
        metadata = [r for r in records if r["ph"] == "M"]
        instants = [r for r in records if r["ph"] == "i"]
        starts = [r for r in records if r["ph"] == "s"]
        finishes = [r for r in records if r["ph"] == "f"]
        # One thread per event kind (no owner/policy in the synthetic
        # trace); every event is an instant; one arrow per causal edge
        # (2 beacons->flush, flush->hint, hint->switch, switch->recovery).
        assert len(metadata) == 6
        assert len(instants) == len(_loop_trace())
        assert len(starts) == len(finishes) == 5
        # Sim seconds become microseconds.
        hint = next(r for r in instants if r["name"] == "i2a-hint")
        assert hint["ts"] == pytest.approx(20.0 * 1e6)

    def test_span_events_become_slices(self):
        events = [_ev(8.0, "span", t_start=3.0, dur=5.0, op="solve")]
        records = analyze.chrome_trace(events)["traceEvents"]
        slices = [r for r in records if r["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == pytest.approx(3.0 * 1e6)
        assert slices[0]["dur"] == pytest.approx(5.0 * 1e6)

    def test_dump_is_valid_json(self, tmp_path):
        path = tmp_path / "chrome" / "trace.json"
        analyze.dump_chrome_trace(_loop_trace(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"


def _artifact(rows=None, checks=None):
    return {
        "schema": "eona-run-artifact/2",
        "experiment": "e99",
        "checks": checks or [],
        "tables": [
            {
                "variant": "mini",
                "name": "E99",
                "notes": "",
                "rows": rows if rows is not None else [{"mode": "mini", "x": 10.0}],
            }
        ],
    }


def _check(check="x > 0", passed=True, variant="mini", seed=0):
    return {
        "variant": variant,
        "seed": seed,
        "check": check,
        "passed": passed,
        "detail": check,
    }


class TestCompareArtifacts:
    def test_clean_run_has_no_regressions(self):
        baseline = _artifact(checks=[_check()])
        assert analyze.compare_artifacts(baseline, baseline) == []

    def test_check_regression(self):
        baseline = _artifact(checks=[_check(passed=True)])
        current = _artifact(checks=[_check(passed=False)])
        (reg,) = analyze.compare_artifacts(baseline, current)
        assert reg["kind"] == "check-regressed"
        assert "x > 0" in reg["where"]

    def test_check_missing(self):
        baseline = _artifact(checks=[_check(passed=True)])
        current = _artifact(checks=[])
        (reg,) = analyze.compare_artifacts(baseline, current)
        assert reg["kind"] == "check-missing"

    def test_baseline_failures_are_not_regressions(self):
        # "No worse than seed": a check that already failed may keep
        # failing (or vanish) without tripping the gate.
        baseline = _artifact(checks=[_check(passed=False)])
        current = _artifact(checks=[])
        assert analyze.compare_artifacts(baseline, current) == []

    def test_value_drift_beyond_rtol(self):
        baseline = _artifact(rows=[{"x": 100.0}])
        current = _artifact(rows=[{"x": 106.0}])
        (reg,) = analyze.compare_artifacts(baseline, current, rtol=0.05)
        assert reg["kind"] == "value-drift"
        assert analyze.compare_artifacts(baseline, current, rtol=0.10) == []

    def test_env_dependent_columns_ignored(self):
        baseline = _artifact(rows=[{"wall_s": 1.0, "events_per_sec": 9.0}])
        current = _artifact(rows=[{"wall_s": 99.0, "events_per_sec": 1.0}])
        assert analyze.compare_artifacts(baseline, current) == []

    def test_non_numeric_and_bool_columns_ignored(self):
        baseline = _artifact(rows=[{"mode": "mini", "ok": True}])
        current = _artifact(rows=[{"mode": "other", "ok": False}])
        assert analyze.compare_artifacts(baseline, current) == []

    def test_structure_missing_variant(self):
        baseline = _artifact()
        current = dict(_artifact(), tables=[])
        (reg,) = analyze.compare_artifacts(baseline, current)
        assert reg["kind"] == "structure"
        assert "variant" in reg["where"]

    def test_structure_row_count_change(self):
        baseline = _artifact(rows=[{"x": 1.0}, {"x": 2.0}])
        current = _artifact(rows=[{"x": 1.0}])
        (reg,) = analyze.compare_artifacts(baseline, current)
        assert reg["kind"] == "structure"
        assert reg["what"] == "row count changed"

    def test_render(self):
        baseline = _artifact(rows=[{"x": 100.0}])
        current = _artifact(rows=[{"x": 200.0}])
        found = analyze.compare_artifacts(baseline, current)
        text = analyze.render_regressions(found, "e99")
        assert text.startswith("e99: 1 regression(s)")
        assert "value-drift" in text
        assert analyze.render_regressions([], "e99") == "e99: no regressions"
