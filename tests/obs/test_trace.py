"""Tracer semantics: ring buffer, sink, lifecycle, determinism."""

from __future__ import annotations

import json

import pytest

from repro.core.context import build_context
from repro.network.topology import NodeKind, Topology
from repro.obs.trace import TRACER, Tracer


def _mini_topology() -> Topology:
    topo = Topology("mini")
    topo.add_node("a", NodeKind.SERVER)
    topo.add_node("b", NodeKind.CLIENT)
    topo.add_link("a", "b", 10.0, delay_ms=1)
    return topo


def _run_traced_mini_world(seed: int) -> str:
    """Build and run a tiny world under the tracer; return its JSONL."""
    TRACER.enable(capacity=4096)
    try:
        ctx = build_context(topology=_mini_topology(), seed=seed)
        rng = ctx.rng.get("sizes")
        for _ in range(5):
            ctx.network.start_transfer("a", "b", size_mbit=rng.uniform(1.0, 20.0))
        ctx.run(until=60.0)
    finally:
        TRACER.disable()
    text = TRACER.to_jsonl()
    TRACER.close()
    return text


class TestLifecycle:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False
        assert TRACER.enabled is False

    def test_enable_emit_disable(self):
        TRACER.enable()
        TRACER.emit("x", value=1)
        TRACER.disable()
        assert TRACER.enabled is False
        # Buffered events survive disable() for post-run reading...
        assert TRACER.kind_counts() == {"x": 1}
        # ...and close() drops them along with the counter.
        TRACER.close()
        assert TRACER.events() == []
        assert TRACER.emitted == 0

    def test_enable_resets_buffer_and_counter(self):
        TRACER.enable()
        TRACER.emit("old")
        TRACER.enable()
        assert TRACER.events() == []
        assert TRACER.emitted == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TRACER.enable(capacity=0)

    def test_ring_buffer_bounds_memory(self):
        TRACER.enable(capacity=3)
        for i in range(10):
            TRACER.emit("tick", i=i)
        assert TRACER.emitted == 10
        assert [event["i"] for event in TRACER.events()] == [7, 8, 9]

    def test_events_filter_by_kind(self):
        TRACER.enable()
        TRACER.emit("a")
        TRACER.emit("b")
        TRACER.emit("a")
        assert len(TRACER.events("a")) == 2
        assert TRACER.kind_counts() == {"a": 2, "b": 1}


class TestClock:
    def test_events_stamped_with_bound_clock(self):
        TRACER.enable()
        now = [12.5]
        TRACER.bind_clock(lambda: now[0])
        TRACER.emit("x")
        now[0] = 40.0
        TRACER.emit("y")
        times = [event["t"] for event in TRACER.events()]
        assert times == [12.5, 40.0]

    def test_span_records_interval(self):
        TRACER.enable()
        now = [10.0]
        TRACER.bind_clock(lambda: now[0])
        with TRACER.span("work", label="w"):
            now[0] = 14.0
        (event,) = TRACER.events("work")
        assert event["t_start"] == 10.0
        assert event["t"] == 14.0
        assert event["dur"] == 4.0
        assert event["label"] == "w"


class TestSink:
    def test_sink_receives_every_event_past_ring_capacity(self, tmp_path):
        sink = tmp_path / "traces" / "t.jsonl"  # exercises makedirs too
        TRACER.enable(capacity=2, sink=str(sink))
        for i in range(6):
            TRACER.emit("tick", i=i)
        TRACER.disable()
        lines = sink.read_text().splitlines()
        assert len(lines) == 6  # ring kept 2, the sink kept all
        assert [json.loads(line)["i"] for line in lines] == list(range(6))
        assert len(TRACER.events()) == 2

    def test_sink_lines_have_sorted_keys(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        TRACER.enable(sink=str(sink))
        TRACER.emit("z-kind", zebra=1, alpha=2)
        TRACER.disable()
        line = sink.read_text().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_sink_path_property(self, tmp_path):
        sink = str(tmp_path / "t.jsonl")
        TRACER.enable(sink=sink)
        assert TRACER.sink_path == sink
        TRACER.close()
        assert TRACER.sink_path is None


class TestForkGuard:
    def test_noop_in_owner_process(self):
        TRACER.enable()
        TRACER.emit("x")
        TRACER.deactivate_inherited()
        assert TRACER.enabled is True
        assert TRACER.emitted == 1

    def test_inherited_tracer_goes_inert(self, tmp_path):
        TRACER.enable(sink=str(tmp_path / "t.jsonl"))
        TRACER.emit("x")
        # Simulate a forked child: the enabling pid is someone else.
        TRACER._owner_pid = -1
        TRACER.deactivate_inherited()
        assert TRACER.enabled is False
        assert TRACER.events() == []
        # The handle is dropped, not closed: the parent's fd stays valid.
        assert TRACER.sink_path is None


class TestDeterminism:
    def test_same_seed_traces_are_byte_identical(self):
        first = _run_traced_mini_world(seed=7)
        second = _run_traced_mini_world(seed=7)
        assert first  # the mini world emits allocator-solve events
        assert first == second

    def test_different_seeds_differ(self):
        # Transfer sizes are seeded, so the solve timeline should move.
        assert _run_traced_mini_world(seed=0) != _run_traced_mini_world(seed=1)

    def test_untraced_run_emits_nothing(self):
        ctx = build_context(topology=_mini_topology(), seed=0)
        ctx.network.start_transfer("a", "b", size_mbit=5.0)
        ctx.run(until=30.0)
        assert TRACER.emitted == 0
        assert TRACER.events() == []


class TestEdgeCases:
    def test_empty_run_serializes_to_nothing(self, tmp_path):
        sink = tmp_path / "empty.jsonl"
        TRACER.enable(sink=str(sink))
        TRACER.disable()
        assert TRACER.to_jsonl() == ""
        assert TRACER.events() == []
        assert TRACER.emitted == 0
        assert sink.read_text() == ""

    def test_ring_wraparound_keeps_sink_complete(self, tmp_path):
        sink = tmp_path / "wrap.jsonl"
        TRACER.enable(capacity=4, sink=str(sink))
        for index in range(10):
            TRACER.emit("tick", index=index)
        TRACER.disable()
        # The ring kept the newest 4 events; the sink got all 10.
        buffered = TRACER.events()
        assert [e["index"] for e in buffered] == [6, 7, 8, 9]
        assert TRACER.emitted == 10
        lines = sink.read_text().splitlines()
        assert [json.loads(line)["index"] for line in lines] == list(range(10))

    def test_out_of_order_emission_is_rejected(self):
        from repro.obs.trace import TraceOrderError

        now = {"t": 5.0}
        TRACER.enable()
        TRACER.bind_clock(lambda: now["t"])
        TRACER.emit("first")
        now["t"] = 3.0
        with pytest.raises(TraceOrderError, match="out-of-order"):
            TRACER.emit("second")
        # The offending event was never recorded anywhere.
        assert TRACER.emitted == 1
        # Rebinding the clock resets the watermark: a new world's sim
        # time legitimately restarts at 0.
        now["t"] = 0.0
        TRACER.bind_clock(lambda: now["t"])
        TRACER.emit("new-world")
        assert [e["kind"] for e in TRACER.events()] == ["first", "new-world"]
