"""Keep the process-global tracer and kernel hook clean between tests."""

from __future__ import annotations

import pytest

from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator


@pytest.fixture(autouse=True)
def _clean_observability():
    """The tracer and dispatch hook are process-global; never leak state."""
    TRACER.close()
    Simulator.default_dispatch_hook = None
    yield
    TRACER.close()
    Simulator.default_dispatch_hook = None
