"""CLI observability surfaces: --version, trace, profile, JSON stdout."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.context import build_context
from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.experiments.spec import ExperimentSpec, VariantSpec
from repro.network.topology import NodeKind, Topology


def _mini_runner(seed: int) -> ExperimentResult:
    """A real (but tiny) simulated world so instrumentation fires."""
    topo = Topology("mini")
    topo.add_node("a", NodeKind.SERVER)
    topo.add_node("b", NodeKind.CLIENT)
    topo.add_link("a", "b", 10.0, delay_ms=1)
    ctx = build_context(topology=topo, seed=seed)
    rng = ctx.rng.get("sizes")
    for _ in range(4):
        ctx.network.start_transfer("a", "b", size_mbit=rng.uniform(1.0, 20.0))
    ctx.run(until=60.0)
    ctx.network.sync()
    result = ExperimentResult(name="E99-mini", notes=f"seed={seed}")
    result.add_row(
        mode="mini",
        completed=float(ctx.network.completed_transfers),
        _counters=ctx.allocation_counters(),
    )
    return result


def _idle_runner(seed: int) -> ExperimentResult:
    """A world where nothing happens: no events, no trace."""
    result = ExperimentResult(name="E99-idle")
    result.add_row(mode="idle", completed=0.0)
    return result


MINI_SPEC = ExperimentSpec(
    exp_id="e99",
    title="synthetic mini world",
    source="tests",
    module=__name__,
    variants=(VariantSpec(name="mini", runner=_mini_runner),),
)

IDLE_SPEC = ExperimentSpec(
    exp_id="e98",
    title="synthetic idle world",
    source="tests",
    module=__name__,
    variants=(VariantSpec(name="idle", runner=_idle_runner),),
)


@pytest.fixture
def synthetic_registry(monkeypatch):
    specs = {spec.exp_id: spec for spec in (MINI_SPEC, IDLE_SPEC)}

    def fake_get(exp_id: str) -> ExperimentSpec:
        try:
            return specs[exp_id]
        except KeyError:
            raise KeyError(exp_id)

    monkeypatch.setattr(registry, "get", fake_get)


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("eona ")
        assert out.strip().split()[-1][0].isdigit()


class TestUnknownExperiment:
    def test_unknown_id_is_rc2(self, capsys):
        assert main(["trace", "e77777"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_to_out_directory(self, synthetic_registry, tmp_path, capsys):
        out = tmp_path / "traces"
        rc = main(["trace", "e99", "--seeds", "0", "--out", str(out)])
        captured = capsys.readouterr()
        assert rc == 0
        sink = out / "TRACE_e99.jsonl"
        lines = sink.read_text().splitlines()
        assert lines  # instrumented mini world emitted events
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "allocator-solve" in kinds
        # Summary goes to stderr; stdout stays empty in --out mode.
        assert "events over seeds" in captured.err
        assert captured.out == ""

    def test_trace_stdout_is_pure_jsonl(self, synthetic_registry, capsys):
        rc = main(["trace", "e99", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert "t" in event and "kind" in event

    def test_trace_is_deterministic_across_runs(
        self, synthetic_registry, tmp_path, capsys
    ):
        for name in ("first", "second"):
            assert (
                main(["trace", "e99", "--seeds", "0", "--out", str(tmp_path / name)])
                == 0
            )
        capsys.readouterr()
        first = (tmp_path / "first" / "TRACE_e99.jsonl").read_bytes()
        second = (tmp_path / "second" / "TRACE_e99.jsonl").read_bytes()
        assert first == second

    def test_empty_trace_is_rc1(self, synthetic_registry, capsys):
        rc = main(["trace", "e98", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "trace is empty" in captured.err


class TestProfileCommand:
    def test_profile_reports_handlers(self, synthetic_registry, capsys):
        rc = main(["profile", "e99", "--seeds", "0", "--top", "5"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "handler" in captured.out
        assert "e99/mini" in captured.out  # phase totals by exp/variant

    def test_profile_with_no_events_is_rc1(self, synthetic_registry, capsys):
        rc = main(["profile", "e98", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no events" in captured.err


class TestRunJsonStdout:
    def test_json_format_emits_pure_json_on_stdout(
        self, synthetic_registry, capsys
    ):
        rc = main(["run", "e99", "--seeds", "0", "--no-checks", "--format", "json"])
        captured = capsys.readouterr()
        assert rc == 0
        artifact = json.loads(captured.out)  # whole stdout is one document
        assert artifact["schema"] == "eona-run-artifact/2"
        assert set(artifact["metrics"]) == {"counters", "gauges", "histograms"}
        assert artifact["metrics"]["gauges"]["run.seeds"] == 1.0
        # The human narration still happened -- on stderr.
        assert "e99" in captured.err

    def test_txt_format_keeps_stdout_human(self, synthetic_registry, capsys):
        rc = main(["run", "e99", "--seeds", "0", "--no-checks"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "E99-mini" in captured.out
        with pytest.raises(json.JSONDecodeError):
            json.loads(captured.out)


def _failing_runner(seed: int) -> ExperimentResult:
    """Emits real events, then dies -- the trace must still flush."""
    _mini_runner(seed)
    raise RuntimeError("mid-run failure")


FAIL_SPEC = ExperimentSpec(
    exp_id="e97",
    title="synthetic failing world",
    source="tests",
    module=__name__,
    variants=(VariantSpec(name="fail", runner=_failing_runner),),
)


def _loop_runner(seed: int) -> ExperimentResult:
    """Emits one hand-built causal loop through the global tracer."""
    from repro.obs.trace import TRACER

    if TRACER.enabled:
        now = {"t": 0.0}
        TRACER.bind_clock(lambda: now["t"])

        def emit(t, kind, **fields):
            now["t"] = t
            TRACER.emit(kind, **fields)

        beacon = TRACER.new_cause()
        emit(10.0, "a2i-report", cause=beacon, via="beacon")
        flush = TRACER.new_cause()
        emit(15.0, "agg-flush", cause=flush, parents=[beacon])
        hint = TRACER.new_cause()
        emit(20.0, "i2a-hint", cause=hint, parent=flush)
        action = TRACER.new_cause()
        emit(21.0, "cdn-switch", cause=action, parent=hint, to_cdn="cdn-b")
        emit(30.0, "qoe-recovery", cause=TRACER.new_cause(), parent=action)
    result = ExperimentResult(name="E96-loop")
    result.add_row(mode="loop", completed=1.0)
    return result


LOOP_SPEC = ExperimentSpec(
    exp_id="e96",
    title="synthetic causal loop",
    source="tests",
    module=__name__,
    variants=(VariantSpec(name="loop", runner=_loop_runner),),
)


@pytest.fixture
def loop_registry(monkeypatch):
    specs = {
        spec.exp_id: spec
        for spec in (MINI_SPEC, IDLE_SPEC, FAIL_SPEC, LOOP_SPEC)
    }

    def fake_get(exp_id: str) -> ExperimentSpec:
        try:
            return specs[exp_id]
        except KeyError:
            raise KeyError(exp_id)

    monkeypatch.setattr(registry, "get", fake_get)


class TestTraceFailureFlush:
    def test_failed_run_still_flushes_stdout(self, loop_registry, capsys):
        rc = main(["trace", "e97", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "run failed after" in captured.err
        assert "mid-run failure" in captured.err
        # The partial trace reached stdout as parseable JSONL.
        lines = captured.out.splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "allocator-solve" in kinds

    def test_failed_run_keeps_sink_file(self, loop_registry, tmp_path, capsys):
        out = tmp_path / "traces"
        rc = main(["trace", "e97", "--seeds", "0", "--out", str(out)])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.out == ""
        assert "partial trace" in captured.err
        sink = out / "TRACE_e97.jsonl"
        assert sink.read_text().splitlines()  # events up to the crash


class TestTraceDiffCommand:
    def test_diff_needs_two_paths(self, capsys):
        assert main(["trace", "diff"]) == 2
        assert "usage: eona trace diff" in capsys.readouterr().err

    def test_extra_paths_rejected_outside_diff(self, loop_registry, capsys):
        assert main(["trace", "e99", "extra.jsonl"]) == 2
        assert "unexpected trace arguments" in capsys.readouterr().err

    def test_diff_of_trace_files(self, loop_registry, tmp_path, capsys):
        for name, exp in (("quo.jsonl", "e99"), ("loop.jsonl", "e96")):
            rc = main(["trace", exp, "--seeds", "0"])
            captured = capsys.readouterr()
            assert rc == 0
            (tmp_path / name).write_text(captured.out)
        rc = main(
            ["trace", "diff", str(tmp_path / "quo.jsonl"), str(tmp_path / "loop.jsonl")]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "i2a-hint->cdn-switch" in captured.out
        assert "(only in loop.jsonl)" in captured.out

    def test_diff_rejects_unreadable_file(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        a.write_text('{"t": 0, "kind": "x"}\n')
        rc = main(["trace", "diff", str(a), str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_experiment_prints_tables(self, loop_registry, capsys):
        rc = main(["analyze", "e96", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "loop latency by phase" in captured.out
        assert "beacon_to_flush" in captured.out
        assert "slowest spans" in captured.out
        assert "cdn-b" in captured.out  # the group table attributes the switch

    def test_analyze_trace_file(self, loop_registry, tmp_path, capsys):
        rc = main(["trace", "e96", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 0
        trace = tmp_path / "loop.jsonl"
        trace.write_text(captured.out)
        rc = main(["analyze", str(trace)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "hint_to_action" in captured.out

    def test_analyze_chrome_export(self, loop_registry, tmp_path, capsys):
        chrome = tmp_path / "chrome.json"
        rc = main(["analyze", "e96", "--seeds", "0", "--chrome", str(chrome)])
        captured = capsys.readouterr()
        assert rc == 0
        doc = json.loads(chrome.read_text())
        names = {record["name"] for record in doc["traceEvents"]}
        assert "i2a-hint" in names

    def test_analyze_out_absorbs_loop_metrics(
        self, loop_registry, tmp_path, capsys
    ):
        rc = main(["analyze", "e96", "--seeds", "0", "--out", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        artifact = json.loads((tmp_path / "BENCH_e96.json").read_text())
        histograms = artifact["metrics"]["histograms"]
        assert histograms["loop.hint_to_action"]["total"] == 1
        assert artifact["metrics"]["counters"]["loop.beacon_to_flush_samples"] == 1

    def test_analyze_out_rejected_for_trace_files(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"t": 0, "kind": "x"}\n')
        rc = main(["analyze", str(trace), "--out", str(tmp_path)])
        assert rc == 2
        assert "--out needs an experiment target" in capsys.readouterr().err

    def test_analyze_empty_trace_is_rc1(self, loop_registry, capsys):
        rc = main(["analyze", "e98", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "trace is empty" in captured.err


class TestBenchCompare:
    def _baseline(self, tmp_path) -> str:
        _tables, artifact = registry.run_experiment(
            MINI_SPEC, [0], parallel=False, evaluate=True
        )
        return artifact.save(str(tmp_path))

    def test_clean_rerun_passes(self, loop_registry, tmp_path, capsys):
        path = self._baseline(tmp_path)
        rc = main(["bench", "compare", path])
        captured = capsys.readouterr()
        assert rc == 0
        assert "no regressions" in captured.out

    def test_directory_expansion(self, loop_registry, tmp_path, capsys):
        self._baseline(tmp_path)
        rc = main(["bench", "compare", str(tmp_path)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_tampered_baseline_gates(self, loop_registry, tmp_path, capsys):
        path = self._baseline(tmp_path)
        doc = json.loads(open(path).read())
        for row in doc["tables"][0]["rows"]:
            if isinstance(row.get("completed"), float):
                row["completed"] = row["completed"] * 10 + 100.0
        doc["checks"].append(
            {
                "variant": "mini",
                "seed": 0,
                "check": "completed > 1e9",
                "passed": True,
                "detail": "synthetic",
            }
        )
        with open(path, "w") as handle:
            json.dump(doc, handle)
        rc = main(["bench", "compare", path])
        captured = capsys.readouterr()
        assert rc == 1
        assert "check-missing" in captured.out
        assert "value-drift" in captured.out

    def test_missing_directory_is_rc2(self, capsys):
        assert main(["bench", "compare", "/no/such/dir"]) == 2
        assert "no such artifact" in capsys.readouterr().err
