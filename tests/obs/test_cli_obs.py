"""CLI observability surfaces: --version, trace, profile, JSON stdout."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.context import build_context
from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.experiments.spec import ExperimentSpec, VariantSpec
from repro.network.topology import NodeKind, Topology


def _mini_runner(seed: int) -> ExperimentResult:
    """A real (but tiny) simulated world so instrumentation fires."""
    topo = Topology("mini")
    topo.add_node("a", NodeKind.SERVER)
    topo.add_node("b", NodeKind.CLIENT)
    topo.add_link("a", "b", 10.0, delay_ms=1)
    ctx = build_context(topology=topo, seed=seed)
    rng = ctx.rng.get("sizes")
    for _ in range(4):
        ctx.network.start_transfer("a", "b", size_mbit=rng.uniform(1.0, 20.0))
    ctx.run(until=60.0)
    ctx.network.sync()
    result = ExperimentResult(name="E99-mini", notes=f"seed={seed}")
    result.add_row(
        mode="mini",
        completed=float(ctx.network.completed_transfers),
        _counters=ctx.allocation_counters(),
    )
    return result


def _idle_runner(seed: int) -> ExperimentResult:
    """A world where nothing happens: no events, no trace."""
    result = ExperimentResult(name="E99-idle")
    result.add_row(mode="idle", completed=0.0)
    return result


MINI_SPEC = ExperimentSpec(
    exp_id="e99",
    title="synthetic mini world",
    source="tests",
    module=__name__,
    variants=(VariantSpec(name="mini", runner=_mini_runner),),
)

IDLE_SPEC = ExperimentSpec(
    exp_id="e98",
    title="synthetic idle world",
    source="tests",
    module=__name__,
    variants=(VariantSpec(name="idle", runner=_idle_runner),),
)


@pytest.fixture
def synthetic_registry(monkeypatch):
    specs = {spec.exp_id: spec for spec in (MINI_SPEC, IDLE_SPEC)}

    def fake_get(exp_id: str) -> ExperimentSpec:
        try:
            return specs[exp_id]
        except KeyError:
            raise KeyError(exp_id)

    monkeypatch.setattr(registry, "get", fake_get)


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("eona ")
        assert out.strip().split()[-1][0].isdigit()


class TestUnknownExperiment:
    def test_unknown_id_is_rc2(self, capsys):
        assert main(["trace", "e77777"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_to_out_directory(self, synthetic_registry, tmp_path, capsys):
        out = tmp_path / "traces"
        rc = main(["trace", "e99", "--seeds", "0", "--out", str(out)])
        captured = capsys.readouterr()
        assert rc == 0
        sink = out / "TRACE_e99.jsonl"
        lines = sink.read_text().splitlines()
        assert lines  # instrumented mini world emitted events
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "allocator-solve" in kinds
        # Summary goes to stderr; stdout stays empty in --out mode.
        assert "events over seeds" in captured.err
        assert captured.out == ""

    def test_trace_stdout_is_pure_jsonl(self, synthetic_registry, capsys):
        rc = main(["trace", "e99", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert "t" in event and "kind" in event

    def test_trace_is_deterministic_across_runs(
        self, synthetic_registry, tmp_path, capsys
    ):
        for name in ("first", "second"):
            assert (
                main(["trace", "e99", "--seeds", "0", "--out", str(tmp_path / name)])
                == 0
            )
        capsys.readouterr()
        first = (tmp_path / "first" / "TRACE_e99.jsonl").read_bytes()
        second = (tmp_path / "second" / "TRACE_e99.jsonl").read_bytes()
        assert first == second

    def test_empty_trace_is_rc1(self, synthetic_registry, capsys):
        rc = main(["trace", "e98", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "trace is empty" in captured.err


class TestProfileCommand:
    def test_profile_reports_handlers(self, synthetic_registry, capsys):
        rc = main(["profile", "e99", "--seeds", "0", "--top", "5"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "handler" in captured.out
        assert "e99/mini" in captured.out  # phase totals by exp/variant

    def test_profile_with_no_events_is_rc1(self, synthetic_registry, capsys):
        rc = main(["profile", "e98", "--seeds", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no events" in captured.err


class TestRunJsonStdout:
    def test_json_format_emits_pure_json_on_stdout(
        self, synthetic_registry, capsys
    ):
        rc = main(["run", "e99", "--seeds", "0", "--no-checks", "--format", "json"])
        captured = capsys.readouterr()
        assert rc == 0
        artifact = json.loads(captured.out)  # whole stdout is one document
        assert artifact["schema"] == "eona-run-artifact/2"
        assert set(artifact["metrics"]) == {"counters", "gauges", "histograms"}
        assert artifact["metrics"]["gauges"]["run.seeds"] == 1.0
        # The human narration still happened -- on stderr.
        assert "e99" in captured.err

    def test_txt_format_keeps_stdout_human(self, synthetic_registry, capsys):
        rc = main(["run", "e99", "--seeds", "0", "--no-checks"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "E99-mini" in captured.out
        with pytest.raises(json.JSONDecodeError):
            json.loads(captured.out)
