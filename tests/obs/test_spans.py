"""Span forests, loop latencies, and trace diff (DESIGN.md §13).

The synthetic tests pin the causal algebra on a hand-built loop trace;
the world tests are the PR's correctness gates: same-seed span trees
are byte-identical whether the traced world runs serially or inside a
multiseed worker process, and the hint→action chain appears in an EONA
trace but not in a status-quo one.
"""

from __future__ import annotations

import json

from repro.experiments.multiseed import run_seeds
from repro.obs import spans
from repro.obs.analyze import trace_diff
from repro.obs.trace import TRACER


def _ev(t, kind, cause=None, parent=None, parents=None, **fields):
    event = {"t": float(t), "kind": kind}
    if cause is not None:
        event["cause"] = cause
    if parent is not None:
        event["parent"] = parent
    if parents is not None:
        event["parents"] = parents
    event.update(fields)
    return event


def _loop_trace():
    """One fully coupled loop: 2 beacons -> flush -> hint -> switch -> recovery."""
    return [
        _ev(10.0, "a2i-report", cause=1, via="beacon"),
        _ev(12.0, "a2i-report", cause=2, via="beacon"),
        _ev(15.0, "agg-flush", cause=3, parents=[1, 2]),
        _ev(20.0, "i2a-hint", cause=4, parent=3),
        _ev(21.0, "cdn-switch", cause=5, parent=4, to_cdn="cdn-b"),
        _ev(30.0, "qoe-recovery", cause=6, parent=5),
    ]


class TestLoadJsonl:
    def test_round_trip(self):
        text = "".join(
            json.dumps(e, sort_keys=True) + "\n" for e in _loop_trace()
        )
        assert spans.load_jsonl(text) == _loop_trace()

    def test_rejects_non_json_line(self):
        try:
            spans.load_jsonl('{"t": 0, "kind": "x"}\nnot json\n')
        except ValueError as error:
            assert "line 2" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_rejects_non_event_line(self):
        try:
            spans.load_jsonl('{"t": 0}\n')
        except ValueError as error:
            assert "line 1" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestSpanForest:
    def test_nesting_follows_first_parent(self):
        forest = spans.build_span_forest(_loop_trace())
        # Beacon 2 contributes to the flush's fan-in but the flush nests
        # under its first parent (beacon 1); beacon 2 is a root.
        assert [root.cause for root in forest.roots] == [1, 2]
        chain = forest.roots[0]
        kinds = []
        while True:
            kinds.append(chain.kind)
            if not chain.children:
                break
            chain = chain.children[0]
        assert kinds == [
            "a2i-report",
            "agg-flush",
            "i2a-hint",
            "cdn-switch",
            "qoe-recovery",
        ]

    def test_ancestry_walks_to_root(self):
        forest = spans.build_span_forest(_loop_trace())
        kinds = [str(e["kind"]) for e in forest.ancestry(6)]
        assert kinds == [
            "qoe-recovery",
            "cdn-switch",
            "i2a-hint",
            "agg-flush",
            "a2i-report",
        ]

    def test_chain_counts(self):
        forest = spans.build_span_forest(_loop_trace())
        assert forest.chain_counts() == {
            "a2i-report->agg-flush": 2,
            "agg-flush->i2a-hint": 1,
            "cdn-switch->qoe-recovery": 1,
            "i2a-hint->cdn-switch": 1,
        }

    def test_missing_parent_makes_root(self):
        # Ring-buffer eviction: the parent fell off the front.
        forest = spans.build_span_forest(
            [_ev(5.0, "i2a-hint", cause=9, parent=1)]
        )
        assert [root.cause for root in forest.roots] == [9]

    def test_to_jsonl_is_byte_stable(self):
        a = spans.build_span_forest(_loop_trace()).to_jsonl()
        b = spans.build_span_forest(_loop_trace()).to_jsonl()
        assert a == b
        assert a.count("\n") == 2  # one line per root


class TestSplitWorlds:
    def test_single_world_is_one_chunk(self):
        assert spans.split_worlds(_loop_trace()) == [_loop_trace()]

    def test_splits_at_time_reset(self):
        first, second = _loop_trace(), _loop_trace()
        worlds = spans.split_worlds(first + second)
        assert worlds == [first, second]

    def test_empty_trace(self):
        assert spans.split_worlds([]) == []


class TestLoopLatencies:
    def test_stage_samples(self):
        latencies = spans.loop_latencies(_loop_trace())
        assert [s["latency_s"] for s in latencies["beacon_to_flush"]] == [
            5.0,
            3.0,
        ]
        # Causal attribution: the hint's ancestry reaches beacon 1.
        assert [s["latency_s"] for s in latencies["beacon_to_hint"]] == [10.0]
        assert [s["latency_s"] for s in latencies["hint_to_action"]] == [1.0]
        assert [s["latency_s"] for s in latencies["action_to_recovery"]] == [
            9.0
        ]
        assert latencies["hint_to_action"][0]["group"] == "cdn-b"

    def test_temporal_fallback_uses_latest_beacon(self):
        # An uncoupled hint (no causal chain): attribute to the newest
        # beacon before it.
        events = [
            _ev(10.0, "a2i-report", cause=1, via="beacon"),
            _ev(40.0, "a2i-report", cause=2, via="beacon"),
            _ev(45.0, "i2a-hint", cause=3),
        ]
        latencies = spans.loop_latencies(events)
        assert [s["latency_s"] for s in latencies["beacon_to_hint"]] == [5.0]

    def test_temporal_fallback_never_crosses_worlds(self):
        # World 1 ends with a beacon at t=50; world 2 opens with an
        # uncoupled hint at t=5.  Crossing the boundary would produce a
        # negative latency -- the bug split_worlds exists to prevent.
        events = [
            _ev(50.0, "a2i-report", cause=1, via="beacon"),
            _ev(5.0, "i2a-hint", cause=1),
        ]
        latencies = spans.loop_latencies(events)
        assert latencies["beacon_to_hint"] == []

    def test_pull_reports_are_not_beacons(self):
        events = [
            _ev(10.0, "a2i-report", cause=1, via="query"),
            _ev(45.0, "i2a-hint", cause=2),
        ]
        assert spans.loop_latencies(events)["beacon_to_hint"] == []

    def test_phase_attribution(self):
        events = [
            _ev(0.0, "phase-transition", phase="ramp"),
            _ev(10.0, "a2i-report", cause=1, via="beacon"),
            _ev(12.0, "agg-flush", cause=2, parents=[1]),
            _ev(20.0, "phase-transition", phase="peak"),
            _ev(25.0, "agg-flush", cause=3, parents=[1]),
        ]
        latencies = spans.loop_latencies(events)
        assert [s["phase"] for s in latencies["beacon_to_flush"]] == [
            "ramp",
            "peak",
        ]


class TestCapture:
    def test_owned_capture_leaves_tracer_closed(self):
        with spans.capture() as events:
            assert TRACER.enabled
            TRACER.emit("inside")
        assert not TRACER.enabled
        assert TRACER.events() == []
        assert [e["kind"] for e in events] == ["inside"]

    def test_nested_capture_reuses_outer_trace(self):
        TRACER.enable()
        TRACER.emit("before")
        with spans.capture() as events:
            TRACER.emit("inside")
        assert [e["kind"] for e in events] == ["inside"]
        # The outer trace is untouched.
        assert TRACER.enabled
        assert [e["kind"] for e in TRACER.events()] == ["before", "inside"]

    def test_capture_corrects_for_ring_drop(self):
        TRACER.enable(capacity=4)
        for index in range(3):
            TRACER.emit(f"old-{index}")
        with spans.capture() as events:
            for index in range(4):
                TRACER.emit(f"new-{index}")
        # The ring evicted the old events; only in-block ones return.
        assert [e["kind"] for e in events] == [f"new-{i}" for i in range(4)]


# ----------------------------------------------------------------------
# world gates
# ----------------------------------------------------------------------
_SMALL_WORLD = dict(
    n_clients=8,
    access_capacity_mbps=15.0,
    peak_rate_per_s=1.0,
    horizon_s=240.0,
)


def _span_forest_row(seed: int) -> dict:
    """Module-level (picklable) row_fn: trace a small EONA world."""
    from repro.baselines.modes import Mode
    from repro.experiments.exp_e2_flash_crowd import run_mode

    with spans.capture() as events:
        run_mode(Mode.EONA, seed=seed, **_SMALL_WORLD)
    return {"seed": seed, "forest": spans.build_span_forest(events).to_jsonl()}


class TestByteIdenticalGate:
    def test_span_forest_identical_serial_vs_parallel(self):
        seeds = [0, 1]
        serial = run_seeds(_span_forest_row, seeds)
        parallel = run_seeds(_span_forest_row, seeds, parallel=True, max_workers=2)
        for serial_row, parallel_row in zip(serial, parallel):
            assert serial_row["seed"] == parallel_row["seed"]
            assert serial_row["forest"]  # the EONA world does emit spans
            assert serial_row["forest"] == parallel_row["forest"]
        assert serial[0]["forest"] != serial[1]["forest"]


class TestTraceDiffWorlds:
    def test_hint_chain_only_in_eona(self):
        from repro.baselines.modes import Mode
        from repro.experiments.exp_e2_flash_crowd import run_mode

        captured = {}
        for mode in (Mode.STATUS_QUO, Mode.EONA):
            with spans.capture() as events:
                run_mode(mode, seed=0, **_SMALL_WORLD)
            captured[mode] = events
        diff = trace_diff(
            captured[Mode.STATUS_QUO],
            captured[Mode.EONA],
            "status_quo",
            "eona",
        )
        hint_chains = {
            key: counts
            for key, counts in diff["chains"].items()
            if key.startswith("i2a-hint->")
        }
        assert hint_chains  # EONA acts on hints...
        for counts in hint_chains.values():
            assert counts[0] == 0  # ...and status-quo never does.
            assert counts[1] > 0
        assert diff["kinds"]["i2a-hint"][0] == 0
        assert diff["kinds"]["i2a-hint"][1] > 0
        assert "hint_to_action" in diff["latency"]
        assert diff["latency"]["hint_to_action"]["status_quo"] is None
        assert diff["latency"]["hint_to_action"]["eona"]["count"] > 0
