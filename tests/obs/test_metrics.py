"""Metrics registry: counters, gauges, histogram bucketing, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    WALL_SECONDS_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_requires_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))

    def test_histogram_bucketing(self):
        hist = Histogram("h", (1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            hist.observe(value)
        # counts[i] counts observations <= edges[i]; last slot overflows.
        assert hist.counts == [2, 2, 1]
        assert hist.total == 5
        assert hist.sum == pytest.approx(27.5)

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("h", (1.0, 10.0))
        for _ in range(10):
            hist.observe(0.5)
        # All mass in the first bucket: quantiles interpolate [0, 1].
        assert hist.percentile(0.5) == pytest.approx(0.5)
        assert hist.percentile(1.0) == pytest.approx(1.0)

    def test_percentile_spans_buckets(self):
        hist = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        # rank 2.0 lands at the first bucket boundary exactly.
        assert hist.percentile(0.25) == pytest.approx(1.0)
        assert hist.percentile(0.5) == pytest.approx(2.0)
        # rank 3.0 is halfway through the (2, 4] bucket's two samples.
        assert hist.percentile(0.75) == pytest.approx(3.0)

    def test_percentile_overflow_clamps_to_last_edge(self):
        hist = Histogram("h", (1.0, 10.0))
        hist.observe(50.0)
        assert hist.percentile(0.99) == pytest.approx(10.0)

    def test_percentile_empty_and_bounds(self):
        hist = Histogram("h", (1.0,))
        assert hist.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(1.1)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_edge_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_default_histogram_edges(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").edges == WALL_SECONDS_EDGES

    def test_counter_value_lookup(self):
        registry = MetricsRegistry()
        assert registry.counter_value("missing") is None
        registry.counter("x").inc(2)
        assert registry.counter_value("x") == 2

    def test_absorb_prefixes_and_skips_non_numeric(self):
        registry = MetricsRegistry()
        registry.absorb(
            {"solve_calls": 3, "label": "noop", "flag": True, "ratio": 2.9},
            prefix="alloc.",
        )
        assert registry.counter_value("alloc.solve_calls") == 3
        assert registry.counter_value("alloc.ratio") == 2  # int() truncation
        assert registry.counter_value("alloc.label") is None
        assert registry.counter_value("alloc.flag") is None

    def test_absorb_accumulates_across_calls(self):
        registry = MetricsRegistry()
        registry.absorb({"n": 1})
        registry.absorb({"n": 2})
        assert registry.counter_value("n") == 3


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("run.rows").inc(4)
        registry.gauge("run.seeds").set(2)
        registry.histogram("run.variant_wall_s", (1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"run.rows": 4}
        assert snap["gauges"] == {"run.seeds": 2.0}
        assert snap["histograms"] == {
            "run.variant_wall_s": {
                "edges": [1.0],
                "counts": [1, 0],
                "total": 1,
                "sum": 0.5,
                "p50": pytest.approx(0.5),
                "p95": pytest.approx(0.95),
                "p99": pytest.approx(0.99),
            }
        }

    def test_snapshot_is_sorted_and_json_stable(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            for name in ("zeta", "alpha", "mid"):
                registry.counter(name).inc()
                registry.gauge(name).set(1.0)
            return registry

        a, b = build().snapshot(), build().snapshot()
        assert list(a["counters"]) == ["alpha", "mid", "zeta"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_empty_snapshot(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
