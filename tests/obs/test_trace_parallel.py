"""Tracing across multiseed worker processes (the fork-inheritance bug).

The tracer is per-process: a forked worker inherits ``TRACER.enabled``
and the parent's open sink handle, so ``multiseed._run_one`` deactivates
inherited tracers on worker entry.  Tracing in a worker is opt-in -- a
row function that wants a trace enables the tracer itself, and a serial
run of the same seed must produce byte-identical trace output.
"""

from __future__ import annotations

from repro.experiments.multiseed import run_seeds
from repro.obs.trace import TRACER


def _build_and_run_mini_world(seed: int):
    from repro.core.context import build_context
    from repro.network.topology import NodeKind, Topology

    topo = Topology("mini")
    topo.add_node("a", NodeKind.SERVER)
    topo.add_node("b", NodeKind.CLIENT)
    topo.add_link("a", "b", 10.0, delay_ms=1)
    ctx = build_context(topology=topo, seed=seed)
    rng = ctx.rng.get("sizes")
    for _ in range(4):
        ctx.network.start_transfer("a", "b", size_mbit=rng.uniform(1.0, 20.0))
    ctx.run(until=60.0)
    return ctx


def _traced_row(seed: int) -> dict:
    """Module-level (picklable) row_fn that opts into tracing itself."""
    TRACER.enable(capacity=4096)
    try:
        ctx = _build_and_run_mini_world(seed)
    finally:
        TRACER.disable()
    trace = TRACER.to_jsonl()
    TRACER.close()
    return {
        "seed": seed,
        "completed": float(ctx.network.completed_transfers),
        "trace": trace,
    }


def _tracer_state_row(seed: int) -> dict:
    """Reports what the worker's inherited tracer looks like."""
    return {
        "seed": seed,
        "enabled": TRACER.enabled,
        "buffered": float(len(TRACER.events())),
        "sink": str(TRACER.sink_path),
    }


class TestSerialParallelEquivalence:
    def test_trace_identical_between_serial_and_parallel(self):
        seeds = [0, 1]
        serial = run_seeds(_traced_row, seeds)
        parallel = run_seeds(_traced_row, seeds, parallel=True, max_workers=2)
        for serial_row, parallel_row in zip(serial, parallel):
            assert serial_row["seed"] == parallel_row["seed"]
            assert serial_row["trace"]  # the mini world does emit events
            assert serial_row["trace"] == parallel_row["trace"]
        # Distinct seeds produce distinct traces (the comparison above
        # is not vacuous).
        assert serial[0]["trace"] != serial[1]["trace"]


class TestWorkerInertness:
    def test_parent_enabled_tracer_is_inert_in_workers(self, tmp_path):
        sink = tmp_path / "parent.jsonl"
        TRACER.enable(sink=str(sink))
        TRACER.emit("parent-event")
        try:
            rows = run_seeds(
                _tracer_state_row, [0, 1], parallel=True, max_workers=2
            )
        finally:
            TRACER.disable()
        for row in rows:
            assert row["enabled"] is False
            assert row["buffered"] == 0.0
            assert row["sink"] == "None"
        # The parent's trace is untouched by the workers' deactivation.
        assert TRACER.kind_counts() == {"parent-event": 1}
        assert sink.read_text().count("parent-event") == 1

    def test_serial_rows_keep_tracer_untouched(self):
        TRACER.enable()
        TRACER.emit("parent-event")
        rows = run_seeds(_tracer_state_row, [0], parallel=False)
        assert rows[0]["enabled"] is True
        assert rows[0]["buffered"] == 1.0
