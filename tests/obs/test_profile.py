"""Handler profiler: kernel hook wiring, accounting, phases."""

from __future__ import annotations

import functools

import pytest

from repro.obs.profile import HandlerProfiler, _qualname, wall_clock
from repro.simkernel.kernel import Simulator


def _noop() -> None:
    pass


def _record(log: list, value: int) -> None:
    log.append(value)


class TestWallClock:
    def test_is_monotonic(self):
        first = wall_clock()
        second = wall_clock()
        assert second >= first


class TestQualname:
    def test_plain_function(self):
        assert _qualname(_noop) == f"{__name__}._noop"

    def test_method(self):
        sim = Simulator(seed=0)
        assert "Simulator" in _qualname(sim.run)

    def test_partial(self):
        wrapped = functools.partial(_record, [], 1)
        assert _qualname(wrapped) == f"partial({__name__}._record)"


class TestInstall:
    def test_install_sets_class_hook(self):
        profiler = HandlerProfiler()
        profiler.install()
        assert Simulator.default_dispatch_hook is not None
        profiler.uninstall()
        assert Simulator.default_dispatch_hook is None

    def test_uninstall_is_idempotent(self):
        profiler = HandlerProfiler()
        profiler.install()
        profiler.uninstall()
        profiler.uninstall()
        assert Simulator.default_dispatch_hook is None

    def test_double_install_rejected(self):
        first, second = HandlerProfiler(), HandlerProfiler()
        first.install()
        with pytest.raises(RuntimeError):
            second.install()
        first.uninstall()

    def test_existing_simulators_are_untouched(self):
        before = Simulator(seed=0)
        profiler = HandlerProfiler()
        profiler.install()
        try:
            before.schedule(1.0, _noop)
            before.run()
        finally:
            profiler.uninstall()
        assert profiler.events == 0


class TestAccounting:
    def test_dispatch_counts_and_preserves_behavior(self):
        profiler = HandlerProfiler()
        profiler.install()
        log: list = []
        try:
            sim = Simulator(seed=0)
            sim.schedule(1.0, _record, log, 1)
            sim.schedule(2.0, _record, log, 2)
            sim.schedule(3.0, _noop)
            sim.run()
        finally:
            profiler.uninstall()
        assert log == [1, 2]  # handlers actually executed, in time order
        assert profiler.events == 3
        handlers = dict(
            (name, calls) for name, calls, _ in profiler.top_handlers(top=10)
        )
        assert handlers[f"{__name__}._record"] == 2
        assert handlers[f"{__name__}._noop"] == 1

    def test_handler_exception_still_accounted(self):
        def boom() -> None:
            raise RuntimeError("down")

        profiler = HandlerProfiler()
        profiler.install()
        try:
            sim = Simulator(seed=0)
            sim.schedule(1.0, boom)
            with pytest.raises(RuntimeError):
                sim.run()
        finally:
            profiler.uninstall()
        assert profiler.events == 1

    def test_phase_attribution(self):
        profiler = HandlerProfiler()
        profiler.install()
        try:
            with profiler.phase("alpha"):
                sim = Simulator(seed=0)
                sim.schedule(1.0, _noop)
                sim.run()
            with profiler.phase("beta"):
                sim = Simulator(seed=0)
                sim.schedule(1.0, _noop)
                sim.run()
        finally:
            profiler.uninstall()
        totals = profiler.phase_totals()
        assert sorted(totals) == ["alpha", "beta"]
        assert all(value >= 0.0 for value in totals.values())

    def test_snapshot_and_report(self):
        profiler = HandlerProfiler()
        profiler.install()
        try:
            with profiler.phase("p"):
                sim = Simulator(seed=0)
                sim.schedule(1.0, _noop)
                sim.run()
        finally:
            profiler.uninstall()
        snap = profiler.snapshot()
        assert snap["events"] == 1
        assert f"{__name__}._noop" in snap["handlers"]
        assert list(snap["phases"]) == ["p"]
        text = profiler.report(top=5)
        assert "_noop" in text
        assert "phase totals:" in text

    def test_top_handlers_respects_limit(self):
        profiler = HandlerProfiler()
        for index in range(5):
            profiler._by_handler[f"h{index}"] = (1, float(index))
        rows = profiler.top_handlers(top=2)
        assert [name for name, _, _ in rows] == ["h4", "h3"]
