"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def line_topology() -> Topology:
    """server -> r1 -> r2 -> client, 10/5/20 Mbit/s."""
    topo = Topology("line")
    topo.add_node("server", NodeKind.SERVER, owner="cdn")
    topo.add_node("r1", NodeKind.ROUTER, owner="isp")
    topo.add_node("r2", NodeKind.ROUTER, owner="isp")
    topo.add_node("client", NodeKind.CLIENT, owner="isp")
    topo.add_link("server", "r1", 10.0, delay_ms=5)
    topo.add_link("r1", "r2", 5.0, delay_ms=2, tags=("access",))
    topo.add_link("r2", "client", 20.0, delay_ms=1)
    return topo


@pytest.fixture
def net(sim, line_topology) -> FluidNetwork:
    return FluidNetwork(sim, line_topology)
