"""Arrival processes: rates, bounds, and profile shapes."""

import pytest

from repro.workloads.arrivals import (
    NonHomogeneousArrivals,
    PoissonArrivals,
    diurnal_rate,
    flash_crowd_rate,
)


class TestPoisson:
    def test_mean_rate_approximate(self, sim):
        count = [0]
        PoissonArrivals(
            sim, rate_per_s=2.0,
            start_fn=lambda i: count.__setitem__(0, count[0] + 1),
            rng=sim.rng.get("arrivals"),
        )
        sim.run(until=500.0)
        assert 800 < count[0] < 1200

    def test_until_bound(self, sim):
        times = []
        PoissonArrivals(
            sim, rate_per_s=5.0,
            start_fn=lambda i: times.append(sim.now),
            rng=sim.rng.get("arrivals"),
            until=10.0,
        )
        sim.run(until=100.0)
        assert times
        assert max(times) <= 10.0

    def test_max_sessions_bound(self, sim):
        indices = []
        PoissonArrivals(
            sim, rate_per_s=10.0,
            start_fn=indices.append,
            rng=sim.rng.get("arrivals"),
            max_sessions=7,
        )
        sim.run(until=1000.0)
        assert indices == list(range(7))

    def test_invalid_rate(self, sim):
        with pytest.raises(ValueError):
            PoissonArrivals(sim, 0.0, lambda i: None, sim.rng.get("x"))


class TestNonHomogeneous:
    def test_thinning_tracks_rate_function(self, sim):
        times = []
        rate_fn = lambda t: 4.0 if t < 50.0 else 0.5
        NonHomogeneousArrivals(
            sim, rate_fn, max_rate_per_s=4.0,
            start_fn=lambda i: times.append(sim.now),
            rng=sim.rng.get("arrivals"),
            until=100.0,
        )
        sim.run(until=100.0)
        early = sum(1 for t in times if t < 50.0)
        late = sum(1 for t in times if t >= 50.0)
        assert early > late * 3

    def test_rate_above_envelope_raises(self, sim):
        NonHomogeneousArrivals(
            sim, lambda t: 10.0, max_rate_per_s=1.0,
            start_fn=lambda i: None,
            rng=sim.rng.get("arrivals"),
        )
        with pytest.raises(ValueError):
            sim.run(until=100.0)


class TestProfiles:
    def test_flash_crowd_shape(self):
        rate = flash_crowd_rate(
            base_per_s=0.1, peak_per_s=2.0, onset_s=60.0, ramp_s=30.0,
            duration_s=120.0,
        )
        assert rate(0.0) == pytest.approx(0.1)
        assert rate(75.0) == pytest.approx(1.05)  # mid-ramp
        assert rate(150.0) == pytest.approx(2.0)  # at peak
        assert rate(10_000.0) == pytest.approx(0.1, abs=0.01)  # decayed

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_rate(2.0, 1.0, 0.0, 1.0, 1.0)

    def test_diurnal_peak_and_trough(self):
        rate = diurnal_rate(mean_per_s=1.0, amplitude=0.5, period_s=100.0,
                            peak_at_s=75.0)
        assert rate(75.0) == pytest.approx(1.5)
        assert rate(25.0) == pytest.approx(0.5)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_rate(1.0, amplitude=1.5)


class TestBatched:
    def _batched(self, rates, seed=42):
        import numpy

        from repro.workloads.arrivals import BatchedPoissonArrivals

        return BatchedPoissonArrivals(rates, numpy.random.default_rng(seed))

    def test_counts_reproducible_per_seed(self):
        a = self._batched([2.0, 0.5, 7.0])
        b = self._batched([2.0, 0.5, 7.0])
        for _ in range(20):
            assert list(a.counts(1.0)) == list(b.counts(1.0))

    def test_mean_matches_rate_times_dt(self):
        arrivals = self._batched([4.0])
        ticks = 2000
        total = sum(int(arrivals.counts(0.5)[0]) for _ in range(ticks))
        assert total / ticks == pytest.approx(2.0, rel=0.1)
        assert arrivals.generated == total

    def test_zero_rate_cohort_never_spawns(self):
        arrivals = self._batched([0.0, 3.0])
        for _ in range(50):
            assert arrivals.counts(1.0)[0] == 0

    def test_zero_dt_spawns_nothing(self):
        arrivals = self._batched([5.0])
        assert arrivals.counts(0.0)[0] == 0
        assert arrivals.generated == 0

    def test_set_rate_takes_effect(self):
        arrivals = self._batched([0.0])
        arrivals.set_rate(0, 50.0)
        assert int(arrivals.counts(1.0)[0]) > 0
        arrivals.set_rate(0, 0.0)
        assert int(arrivals.counts(1.0)[0]) == 0

    def test_validation(self):
        import math

        with pytest.raises(ValueError):
            self._batched([])
        with pytest.raises(ValueError):
            self._batched([-1.0])
        with pytest.raises(ValueError):
            self._batched([math.inf])
        arrivals = self._batched([1.0])
        with pytest.raises(ValueError):
            arrivals.counts(-1.0)
        with pytest.raises(ValueError):
            arrivals.set_rate(0, -2.0)
        with pytest.raises(ValueError):
            arrivals.set_rate(0, math.nan)
