"""Scenario builders: the worlds match their figure's constraints."""

import pytest

from repro.network.topology import NodeKind
from repro.workloads.scenarios import (
    build_cellular_web_scenario,
    build_coarse_control_scenario,
    build_energy_scenario,
    build_flash_crowd_scenario,
    build_oscillation_scenario,
)


class TestFlashCrowd:
    def test_access_is_the_bottleneck(self):
        scenario = build_flash_crowd_scenario(access_capacity_mbps=45.0)
        access = scenario.topology.link(scenario.access_link)
        assert access.capacity_mbps == 45.0
        peering = scenario.topology.links(tag="peering")
        assert all(link.capacity_mbps > access.capacity_mbps for link in peering)

    def test_both_cdns_have_headroom(self):
        scenario = build_flash_crowd_scenario()
        assert all(cdn.has_capacity() for cdn in scenario.cdns)

    def test_client_count(self):
        scenario = build_flash_crowd_scenario(n_clients=7)
        assert len(scenario.client_nodes) == 7


class TestOscillation:
    def test_figure5_capacity_ordering(self):
        scenario = build_oscillation_scenario(
            n_clients=24, peering_b_mbps=60.0, peering_c_mbps=300.0,
            cdn_y_uplink_mbps=45.0,
        )
        b = scenario.topology.link(scenario.peering_b_link)
        c = scenario.topology.link(scenario.peering_c_link)
        demand = 24 * 3.0  # clients at a mid-ladder bitrate
        assert b.capacity_mbps < demand < c.capacity_mbps
        y_uplink = scenario.topology.link_between("cdnY", "peerC")
        assert y_uplink.capacity_mbps < demand

    def test_group_prefers_b(self):
        scenario = build_oscillation_scenario()
        group = next(g for g in scenario.groups if g.name == "cdnX")
        assert group.preferred == "peerB"
        assert set(group.candidates) == {"peerB", "peerC"}

    def test_cdn_y_has_single_candidate(self):
        scenario = build_oscillation_scenario()
        group = next(g for g in scenario.groups if g.name == "cdnY")
        assert group.candidates == ["peerC"]


class TestCoarseControl:
    def test_one_degraded_one_healthy_server(self):
        scenario = build_coarse_control_scenario()
        degraded = [s for s in scenario.cdn_x.servers.values() if s.degraded]
        healthy = [s for s in scenario.cdn_x.servers.values() if not s.degraded]
        assert len(degraded) == 1
        assert len(healthy) == 1

    def test_cdn_x_warm_cdn_y_cold(self):
        scenario = build_coarse_control_scenario()
        item = scenario.catalog.by_rank(0)
        for server in scenario.cdn_x.servers.values():
            assert item.content_id in server.cache
        for server in scenario.cdn_y.servers.values():
            assert item.content_id not in server.cache

    def test_degraded_rate_below_lowest_rung(self):
        scenario = build_coarse_control_scenario()
        degraded = next(s for s in scenario.cdn_x.servers.values() if s.degraded)
        assert degraded.degraded_rate_mbps < 0.4


class TestEnergy:
    def test_servers_and_uplinks_aligned(self):
        scenario = build_energy_scenario(n_servers=4)
        assert len(scenario.cdn.servers) == 4
        assert set(scenario.server_uplinks) == set(scenario.cdn.servers)

    def test_finite_uplinks(self):
        scenario = build_energy_scenario(server_uplink_mbps=50.0)
        for link_id in scenario.server_uplinks.values():
            assert scenario.topology.link(link_id).capacity_mbps == 50.0


class TestCellularWeb:
    def test_one_radio_and_browser_per_client(self):
        scenario = build_cellular_web_scenario(n_clients=5)
        assert len(scenario.radios) == 5
        assert len(scenario.browsers) == 5
        assert len(scenario.access_links) == 5

    def test_radios_have_independent_streams(self):
        scenario = build_cellular_web_scenario(n_clients=3)
        scenario.sim.run(until=200.0)
        states = {radio.stats.transitions for radio in scenario.radios}
        assert len(states) > 1  # not all identical trajectories

    def test_deterministic_per_seed(self):
        def run_once():
            scenario = build_cellular_web_scenario(seed=7, n_clients=2)
            scenario.sim.run(until=100.0)
            return tuple(radio.stats.transitions for radio in scenario.radios)

        assert run_once() == run_once()
