"""Satellite (c): wire faults walk the PR 5 degradation path exactly.

A transport dropping every request must be indistinguishable -- to the
AppP's failure streaks, fallback machinery, and trace -- from an
in-process glass in ``drop`` fault mode.  Counter for counter.
"""

from __future__ import annotations

import pytest

from repro.experiments.exp_e20_service import _wired_world_row

HORIZON_S = 150.0


@pytest.fixture(scope="module")
def rows():
    # One world each way, same seed, same horizon; the wire row drops
    # every frame at the transport and burns its single retry, the
    # local row faults the glass itself (the PR 5 baseline).
    wire = _wired_world_row(
        "wire-drop", seed=0, drop_every=1, retries=1, horizon_s=HORIZON_S
    )
    local = _wired_world_row(
        "local-drop", seed=0, glass_fault="drop", horizon_s=HORIZON_S
    )
    return wire, local


class TestFaultParity:
    def test_same_query_and_error_counters(self, rows):
        wire, local = rows
        assert wire["i2a_queries"] == local["i2a_queries"]
        assert wire["glass_errors"] == local["glass_errors"]
        # Every query failed, both ways.
        assert wire["glass_errors"] == wire["i2a_queries"] > 0

    def test_same_fallback_trajectory(self, rows):
        wire, local = rows
        for key in (
            "fallback_activations",
            "fallback_reengagements",
            "fallback_engage_events",
            "fallback_reengage_events",
        ):
            assert wire[key] == local[key], key
        assert wire["fallback_activations"] == 1
        assert wire["fallback_engage_events"] == 1

    def test_wire_row_accounts_its_retries(self, rows):
        wire, local = rows
        # retries=1 and every attempt dropped: one retry per query.
        assert wire["retries_used"] == wire["i2a_queries"]
        assert wire["queries_answered"] == 0
        assert "retries_used" not in local  # no proxy in the local row

    def test_no_hints_flow_under_total_drop(self, rows):
        wire, local = rows
        assert wire["i2a_hints"] == local["i2a_hints"] == 0
