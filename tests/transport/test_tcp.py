"""TcpTransport + TcpGlassServer: one process, two endpoints, real sockets."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.interfaces import GlassUnavailableError
from repro.transport import (
    CONTROL_OWNER,
    RemoteLookingGlass,
    TcpGlassServer,
    TcpTransport,
    TransportClosed,
    drain_trace,
)


@pytest.fixture
def served(world):
    """``world``'s GlassService on a real TCP port, in a daemon thread."""
    bound = threading.Event()
    server = TcpGlassServer(
        world.service.handle_frame, port=0,
        on_bound=lambda port: bound.set(),
    )
    thread = threading.Thread(target=server.serve, daemon=True)
    thread.start()
    assert bound.wait(timeout=10.0), "server never bound a port"
    yield server
    server.stop()
    thread.join(timeout=10.0)


def proxy_for(server, owner="isp", kind="i2a", **kwargs):
    transport = TcpTransport(port=server.bound_port)
    kwargs.setdefault("timeout_s", 5.0)
    return RemoteLookingGlass(transport, owner=owner, kind=kind, **kwargs), transport


class TestRoundTrip:
    def test_query_travels_the_socket(self, world, served):
        proxy, transport = proxy_for(served)
        try:
            result = proxy.query("appp", "congestion")
        finally:
            transport.close()
        assert result.payload[0]["scope"] == "access"
        assert world.served == 1
        assert served.connections == 1
        # frames_served increments after the reply is flushed; give the
        # server coroutine a beat to get there.
        deadline = time.monotonic() + 5.0
        while served.frames_served < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert served.frames_served >= 1

    def test_connection_persists_across_requests(self, world, served):
        proxy, transport = proxy_for(served)
        try:
            for _ in range(3):
                proxy.query("appp", "congestion")
        finally:
            transport.close()
        assert transport.reconnects == 1
        assert served.connections == 1

    def test_remote_causes_never_enter_the_local_trace(self, world, served):
        # The real cross-process contract, minus the second interpreter:
        # the TCP adapter declares in_process=False, so the reply's cause
        # must be remapped even though both ends share this test process.
        from repro.obs import spans

        proxy, transport = proxy_for(served)
        try:
            with spans.capture() as events:
                result = proxy.query("appp", "congestion")
        finally:
            transport.close()
        remapped = [
            e for e in events
            if e["kind"] == "i2a-hint" and e.get("via") == "remote-query"
        ]
        assert len(remapped) == 1
        assert result.cause == remapped[0]["cause"]
        assert proxy.stats()["causes_remapped"] == 1


class TestControl:
    def test_ping_and_queries(self, world, served):
        proxy, transport = proxy_for(served, owner=CONTROL_OWNER, kind="")
        try:
            ping = proxy.query(CONTROL_OWNER, "__ping__")
            exported = proxy.query(CONTROL_OWNER, "__queries__")
        finally:
            transport.close()
        assert "t" in ping.payload
        assert exported.payload == [{"owner": "isp", "query": "congestion"}]

    def test_trace_streams_over_the_wire(self, world, served):
        # Generate server-side trace events, then pull them via __trace__.
        from repro.obs.trace import TRACER

        TRACER.enable(capacity=1000)
        proxy, transport = proxy_for(served)
        control, control_transport = proxy_for(served, owner=CONTROL_OWNER, kind="")
        try:
            proxy.query("appp", "congestion")
            events, emitted = drain_trace(control, requester="appp")
        finally:
            transport.close()
            control_transport.close()
        assert emitted >= 1
        assert any(e["kind"] == "i2a-hint" for e in events)


class TestFailure:
    def test_unreachable_port_degrades_to_glass_unavailable(self, world, served):
        served.stop()
        # Pick a port nothing listens on (the ephemeral one, after stop,
        # may linger in TIME_WAIT -- use the discard port instead).
        transport = TcpTransport(port=9, connect_timeout_s=0.5)
        proxy = RemoteLookingGlass(
            transport, owner="isp", kind="i2a", timeout_s=0.5, retries=1,
        )
        try:
            with pytest.raises(GlassUnavailableError, match="2 attempt"):
                proxy.query("appp", "congestion")
        finally:
            transport.close()
        assert proxy.queries_failed == 1

    def test_closed_transport_refuses_requests(self, world, served):
        transport = TcpTransport(port=served.bound_port)
        transport.close()
        with pytest.raises(TransportClosed):
            transport.request("x", 1.0)
