"""Shared fixtures for the transport suite: worlds and tracer hygiene."""

from __future__ import annotations

import pytest

from repro.core.interfaces import LookingGlass
from repro.core.registry import OptInRegistry
from repro.core.schemas import CongestionSignal
from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator
from repro.transport import GlassService


@pytest.fixture(autouse=True)
def _fresh_tracer():
    """Every test starts and ends with the process tracer closed."""
    TRACER.close()
    yield
    TRACER.close()


class MiniWorld:
    """A one-glass serving world: sim + I2A glass + GlassService."""

    def __init__(self, seed: int = 7):
        self.sim = Simulator(seed=seed)
        self.registry = OptInRegistry()
        self.registry.grant("isp", "appp")
        self.glass = LookingGlass(self.sim, "isp", self.registry, kind="i2a")
        self.glass.register("congestion", self._congestion)
        self.service = GlassService(clock=lambda: self.sim.now)
        self.service.add_glass(self.glass)
        self.served = 0

    def _congestion(self):
        self.served += 1
        return [
            CongestionSignal(
                time=self.sim.now, scope="access", congested=True,
                severity=0.8,
            )
        ]


@pytest.fixture
def world() -> MiniWorld:
    return MiniWorld()
