"""Record/replay feeds: round trips, divergence, graceful exhaustion."""

from __future__ import annotations

import json

import pytest

from repro.core.interfaces import GlassUnavailableError
from repro.transport import (
    FrameRecorder,
    LoopbackTransport,
    RecordingTransport,
    RemoteLookingGlass,
    ReplayTransport,
    TransportClosed,
    TransportError,
)


def proxy_for(world, transport, **kwargs):
    return RemoteLookingGlass(transport, owner="isp", kind="i2a", **kwargs)


def record_session(world, path, queries=3):
    """Run some queries through a recording loopback; return the feed path."""
    recorder = RecordingTransport(
        LoopbackTransport(world.service.handle_frame),
        str(path),
        clock=lambda: world.sim.now,
    )
    proxy = proxy_for(world, recorder)
    results = [proxy.query("appp", "congestion") for _ in range(queries)]
    recorder.close()
    return results


class TestRecording:
    def test_feed_holds_one_json_object_per_direction(self, world, tmp_path):
        feed = tmp_path / "session.jsonl"
        record_session(world, feed, queries=2)
        records = [json.loads(line) for line in feed.read_text().splitlines()]
        assert [r["dir"] for r in records] == ["send", "recv", "send", "recv"]
        assert [r["seq"] for r in records] == [1, 1, 2, 2]
        # Frames are embedded as parsed envelopes, not quoted strings.
        assert records[0]["frame"]["type"] == "QueryRequest"
        assert records[1]["frame"]["type"] == "QueryReply"

    def test_recording_is_transparent_to_the_session(self, world, tmp_path):
        results = record_session(world, tmp_path / "f.jsonl", queries=1)
        direct = world.glass.query("appp", "congestion")
        assert results[0].payload == direct.payload

    def test_frame_recorder_tees_the_handler_side(self, world, tmp_path):
        feed = tmp_path / "server.jsonl"
        recorder = FrameRecorder(
            world.service.handle_frame, str(feed),
            clock=lambda: world.sim.now,
        )
        proxy = proxy_for(world, LoopbackTransport(recorder))
        proxy.query("appp", "congestion")
        recorder.close()
        assert recorder.frames_recorded == 1
        records = [json.loads(line) for line in feed.read_text().splitlines()]
        assert [r["dir"] for r in records] == ["send", "recv"]
        assert records[1]["frame"]["type"] == "QueryReply"


class TestReplay:
    def test_same_queries_replay_to_the_same_answers(self, world, tmp_path):
        feed = tmp_path / "session.jsonl"
        live = record_session(world, feed, queries=3)
        replay = ReplayTransport(str(feed))
        assert replay.remaining() == 3
        proxy = proxy_for(world, replay)
        replayed = [proxy.query("appp", "congestion") for _ in range(3)]
        assert [r.payload for r in replayed] == [r.payload for r in live]
        assert [r.age_s for r in replayed] == [r.age_s for r in live]
        assert replay.remaining() == 0
        # No server ran: the recorded session served every answer.
        assert world.served == 3

    def test_strict_replay_rejects_a_diverging_query(self, world, tmp_path):
        feed = tmp_path / "session.jsonl"
        record_session(world, feed, queries=1)
        world.glass.register("other", lambda: [])
        proxy = proxy_for(world, ReplayTransport(str(feed), strict=True), retries=0)
        with pytest.raises(GlassUnavailableError, match="divergence"):
            proxy.query("appp", "other")

    def test_lenient_replay_serves_positionally(self, world, tmp_path):
        feed = tmp_path / "session.jsonl"
        record_session(world, feed, queries=1)
        proxy = proxy_for(world, ReplayTransport(str(feed), strict=False))
        result = proxy.query("appp", "anything-goes")
        assert result.query == "congestion"  # the recorded reply, as-is

    def test_exhaustion_degrades_to_glass_unavailable(self, world, tmp_path):
        feed = tmp_path / "session.jsonl"
        record_session(world, feed, queries=1)
        transport = ReplayTransport(str(feed))
        proxy = proxy_for(world, transport, retries=1)
        proxy.query("appp", "congestion")
        with pytest.raises(GlassUnavailableError, match="exhausted"):
            proxy.query("appp", "congestion")
        with pytest.raises(TransportClosed):
            transport.request("x", 1.0)

    def test_malformed_feed_line_names_the_location(self, tmp_path):
        feed = tmp_path / "broken.jsonl"
        feed.write_text('{"dir": "send"}\nnot json\n')
        with pytest.raises(TransportError, match="broken.jsonl:2"):
            ReplayTransport(str(feed))
