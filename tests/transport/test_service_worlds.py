"""Service-world builders and the SimPacer clock contract."""

from __future__ import annotations

import json
import sys

import pytest

from repro.experiments.service_worlds import (
    build_infp_service,
    ready_info,
    run_appp_client,
    serve_command,
)
from repro.simkernel.kernel import Simulator
from repro.transport import (
    GlassService,
    LoopbackTransport,
    RemoteLookingGlass,
    SimPacer,
)


class TestBuildInfPService:
    def test_exports_the_isp_i2a_glass(self):
        infp_world = build_infp_service(seed=1, with_local_traffic=False)
        assert infp_world.service.owners() == ["isp"]
        assert "congestion" in infp_world.infp.i2a.exported_queries()
        assert infp_world.players == []

    def test_local_traffic_populates_the_world(self):
        # Sessions arrive as the sim advances (the launch schedule is
        # lazy); an un-run world has none yet.
        infp_world = build_infp_service(seed=1, horizon_s=100.0)
        assert infp_world.players == []
        infp_world.sim.run(until=100.0)
        assert len(infp_world.players) > 0

    def test_served_clock_is_the_world_sim(self):
        infp_world = build_infp_service(seed=1, with_local_traffic=False)
        infp_world.sim.run(until=25.0)
        assert infp_world.service.clock() == pytest.approx(25.0)


class TestAppPClientLoop:
    def test_client_world_runs_against_a_served_infp(self):
        # Both planes in one process, joined only by the frame handler:
        # the smallest complete service-mode control loop.
        infp_world = build_infp_service(
            seed=0, n_clients=10, access_capacity_mbps=15.0,
            peak_rate_per_s=1.0, horizon_s=200.0,
        )
        proxy = RemoteLookingGlass(
            LoopbackTransport(infp_world.service.handle_frame),
            owner="isp",
            kind="i2a",
        )
        row = run_appp_client(
            proxy, seed=0, n_clients=10, access_capacity_mbps=15.0,
            peak_rate_per_s=1.0, horizon_s=200.0,
        )
        assert row["sessions"] > 0
        assert row["i2a_queries"] > 0
        assert row["queries_answered"] > 0
        assert row["glass_errors"] == row["i2a_queries"] - row["queries_answered"]
        assert infp_world.service.requests_handled == row["queries_answered"]


class TestServeCommand:
    def test_argv_is_a_module_run_of_the_cli(self):
        argv = serve_command(
            seed=3, port=0, time_scale=60.0, horizon_s=600.0, run_for_s=20.0,
            ready_file="/tmp/ready.json", record="/tmp/feed.jsonl",
        )
        assert argv[:5] == [sys.executable, "-m", "repro.cli", "serve", "infp"]
        assert argv[argv.index("--seed") + 1] == "3"
        assert argv[argv.index("--run-for") + 1] == "20.0"
        assert argv[argv.index("--ready-file") + 1] == "/tmp/ready.json"
        assert argv[argv.index("--record") + 1] == "/tmp/feed.jsonl"

    def test_optional_flags_are_omitted(self):
        argv = serve_command(
            seed=0, port=0, time_scale=60.0, horizon_s=600.0, run_for_s=None,
        )
        assert "--run-for" not in argv
        assert "--ready-file" not in argv
        assert "--record" not in argv

    def test_ready_info_round_trips(self, tmp_path):
        blob = {"port": 4242, "host": "127.0.0.1", "owners": ["isp"]}
        path = tmp_path / "ready.json"
        path.write_text(json.dumps(blob))
        assert ready_info(str(path)) == blob


class TestSimPacer:
    def test_sim_advances_with_the_scaled_wall_clock(self):
        wall = [100.0]
        sim = Simulator(seed=1)
        pacer = SimPacer(sim, time_scale=10.0, clock=lambda: wall[0])
        pacer.start()
        wall[0] = 102.0  # 2 wall seconds -> 20 sim seconds at 10x
        assert pacer.tick() == pytest.approx(20.0)
        assert sim.now == pytest.approx(20.0)

    def test_horizon_caps_the_advance(self):
        wall = [0.0]
        sim = Simulator(seed=1)
        pacer = SimPacer(sim, time_scale=100.0, clock=lambda: wall[0])
        pacer.start()
        wall[0] = 50.0  # earns 5000 sim seconds
        assert pacer.tick(horizon_s=300.0) == pytest.approx(300.0)

    def test_sim_never_runs_backwards(self):
        wall = [0.0]
        sim = Simulator(seed=1)
        pacer = SimPacer(sim, time_scale=1.0, clock=lambda: wall[0])
        pacer.start()
        wall[0] = 10.0
        pacer.tick()
        assert pacer.tick(horizon_s=5.0) == pytest.approx(10.0)

    @pytest.mark.parametrize("scale", [0.0, -1.0, float("inf"), float("nan")])
    def test_degenerate_scales_are_rejected(self, scale):
        with pytest.raises(ValueError):
            SimPacer(Simulator(seed=1), time_scale=scale)


class TestServiceErrorReplies:
    def test_codec_garbage_gets_an_error_reply_not_an_exception(self, world):
        reply = world.service.handle_frame("definitely not a frame")
        parsed = json.loads(reply)
        assert parsed["type"] == "ErrorReply"
        assert parsed["body"]["error"] == "CodecError"
        assert world.service.requests_failed == 1

    def test_duplicate_owner_is_rejected(self, world):
        with pytest.raises(ValueError, match="duplicate"):
            world.service.add_glass(world.glass)

    def test_control_owner_is_reserved(self, world):
        class FakeGlass:
            owner = "__control__"

        with pytest.raises(ValueError, match="reserved"):
            world.service.add_glass(FakeGlass())

    def test_service_is_constructible_without_a_clock(self):
        service = GlassService()
        assert service.clock() == 0.0
