"""The keystone gate, test-sized: loopback wire == in-process, by bytes.

Mirrors ``tests/scenarios/test_equivalence.py``: both runs write raw
JSONL sinks and the comparison is on bytes, with exactly one allowed
difference -- the wire's own ``transport.*`` bookkeeping lines.  The
full-size gate (E2's complete world) runs as ``eona run e20``.
"""

from __future__ import annotations

import json

from repro.baselines.modes import Mode
from repro.experiments.exp_e2_flash_crowd import run_mode
from repro.obs.trace import TRACER
from repro.transport import GlassService, LoopbackTransport, RemoteLookingGlass

WORLD = dict(
    seed=3, n_clients=8, access_capacity_mbps=12.0,
    peak_rate_per_s=1.0, horizon_s=200.0,
)


def _wire_wrap(glass):
    service = GlassService(clock=lambda: glass.sim.now)
    service.add_glass(glass)
    return RemoteLookingGlass(
        LoopbackTransport(service.handle_frame),
        owner=glass.owner,
        kind=glass.kind,
        clock=lambda: glass.sim.now,
    )


def _traced(tmp_path, tag, wrap_i2a=None):
    path = tmp_path / f"{tag}.jsonl"
    TRACER.enable(capacity=500_000, sink=str(path))
    try:
        row = run_mode(Mode.EONA, wrap_i2a=wrap_i2a, **WORLD)
    finally:
        TRACER.close()
    lines = path.read_bytes().splitlines(keepends=True)
    assert lines, f"{tag}: empty trace"
    return lines, row


def test_loopback_run_is_byte_identical_minus_transport_lines(tmp_path):
    local_lines, local_row = _traced(tmp_path, "in-process")
    wired_lines, wired_row = _traced(tmp_path, "loopback", wrap_i2a=_wire_wrap)

    transport_lines = [
        line for line in wired_lines
        if json.loads(line)["kind"].startswith("transport.")
    ]
    kept = [
        line for line in wired_lines
        if not json.loads(line)["kind"].startswith("transport.")
    ]
    # The wire leaves its own markers...
    assert transport_lines, "loopback run emitted no transport.* events"
    assert not any(
        json.loads(line)["kind"].startswith("transport.")
        for line in local_lines
    )
    # ...and changes nothing else: same bytes, line for line.
    assert kept == local_lines
    # The worlds agree on the outcome too.
    assert wired_row["buffering_ratio"] == local_row["buffering_ratio"]
    assert wired_row["mean_bitrate_mbps"] == local_row["mean_bitrate_mbps"]


def test_transport_lines_carry_no_cause_ids(tmp_path):
    wired_lines, _ = _traced(tmp_path, "loopback-causes", wrap_i2a=_wire_wrap)
    for line in wired_lines:
        event = json.loads(line)
        if event["kind"].startswith("transport."):
            assert "cause" not in event and "parent" not in event
