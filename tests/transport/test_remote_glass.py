"""RemoteLookingGlass: error mapping, retries, and cause remapping."""

from __future__ import annotations

import pytest

from repro.core.interfaces import GlassUnavailableError, UnknownQueryError
from repro.core.registry import AccessDeniedError
from repro.obs import spans
from repro.transport import (
    CONTROL_OWNER,
    FaultKnobs,
    FaultyTransport,
    LoopbackTransport,
    RemoteGlassError,
    RemoteLookingGlass,
)


def proxy_for(world, transport=None, **kwargs):
    transport = transport or LoopbackTransport(world.service.handle_frame)
    kwargs.setdefault("owner", "isp")
    kwargs.setdefault("kind", "i2a")
    return RemoteLookingGlass(transport, **kwargs)


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"timeout_s": 0.0},
        {"backoff_factor": 0.5},
    ])
    def test_bad_knobs_are_rejected(self, world, kwargs):
        with pytest.raises(ValueError):
            proxy_for(world, **kwargs)


class TestErrorMapping:
    """Server-side glass errors re-raise as their original type --
    denials stay configuration, never transport faults."""

    def test_access_denied_stays_a_denial(self, world):
        proxy = proxy_for(world)
        with pytest.raises(AccessDeniedError):
            proxy.query("stranger", "congestion")
        assert world.glass.queries_denied == 1

    def test_unknown_query_stays_unknown(self, world):
        with pytest.raises(UnknownQueryError):
            proxy_for(world).query("appp", "nope")

    def test_server_fault_mode_passes_through_without_retries(self, world):
        # The server glass dropping queries is a *served* error reply,
        # not a transport failure: it must not burn retry attempts.
        world.glass.set_fault_mode("drop")
        proxy = proxy_for(world, retries=2)
        with pytest.raises(GlassUnavailableError, match="dropping"):
            proxy.query("appp", "congestion")
        assert proxy.retries_used == 0

    def test_unknown_owner_is_a_remote_glass_error(self, world):
        proxy = proxy_for(world, owner="ghost-isp")
        with pytest.raises(RemoteGlassError, match="ghost-isp"):
            proxy.query("appp", "congestion")

    def test_unmapped_server_exception_is_a_remote_glass_error(self, world):
        def explode():
            raise RuntimeError("handler broke")

        world.glass.register("explode", explode)
        with pytest.raises(RemoteGlassError, match="handler broke"):
            proxy_for(world).query("appp", "explode")


class TestRetries:
    def test_exhausted_retries_map_to_glass_unavailable(self, world):
        transport = FaultyTransport(
            LoopbackTransport(world.service.handle_frame),
            knobs=FaultKnobs(drop_every=1),
        )
        proxy = proxy_for(world, transport, retries=2)
        with spans.capture() as events:
            with pytest.raises(GlassUnavailableError, match="3 attempt"):
                proxy.query("appp", "congestion")
        assert proxy.retries_used == 2
        assert proxy.queries_failed == 1
        assert transport.frames_dropped == 3
        retry_events = [e for e in events if e["kind"] == "transport.retry"]
        assert [e["attempt"] for e in retry_events] == [1, 2]

    def test_backoff_multiplies_the_per_attempt_timeout(self, world):
        transport = FaultyTransport(
            LoopbackTransport(world.service.handle_frame),
            knobs=FaultKnobs(drop_every=1),
        )
        proxy = proxy_for(
            world, transport, timeout_s=1.0, retries=2, backoff_factor=2.0
        )
        with spans.capture() as events:
            with pytest.raises(GlassUnavailableError):
                proxy.query("appp", "congestion")
        timeouts = [
            e["timeout_s"] for e in events if e["kind"] == "transport.retry"
        ]
        assert timeouts == [2.0, 4.0]

    def test_zero_retries_fails_on_the_first_drop(self, world):
        transport = FaultyTransport(
            LoopbackTransport(world.service.handle_frame),
            knobs=FaultKnobs(drop_every=1),
        )
        proxy = proxy_for(world, transport, retries=0)
        with pytest.raises(GlassUnavailableError, match="1 attempt"):
            proxy.query("appp", "congestion")
        assert proxy.retries_used == 0


class FakeRemote(LoopbackTransport):
    """A loopback that *claims* to be cross-process, to exercise the
    cause-remap path without spawning a second interpreter."""

    in_process = False


class TestCauseRemap:
    """Satellite (b): a remote peer's span IDs never leak into the
    local trace -- the proxy mints a local cause and keeps the remote
    one as provenance."""

    def test_in_process_transport_passes_causes_through(self, world):
        proxy = proxy_for(world)
        with spans.capture() as events:
            result = proxy.query("appp", "congestion")
        hints = [e for e in events if e["kind"] == "i2a-hint"]
        assert len(hints) == 1  # the server glass's own event, unremapped
        assert result.cause == hints[0]["cause"]
        assert proxy.stats()["causes_remapped"] == 0

    def test_cross_process_causes_are_remapped_locally(self, world):
        proxy = proxy_for(world, FakeRemote(world.service.handle_frame))
        with spans.capture() as events:
            result = proxy.query("appp", "congestion")
        served = [
            e for e in events
            if e["kind"] == "i2a-hint" and e.get("via") == "query"
        ]
        remapped = [
            e for e in events
            if e["kind"] == "i2a-hint" and e.get("via") == "remote-query"
        ]
        assert len(served) == 1 and len(remapped) == 1
        # The handed-back cause is the locally minted one...
        assert result.cause == remapped[0]["cause"]
        # ...distinct from the server's, which survives as provenance.
        assert result.cause != served[0]["cause"]
        assert remapped[0]["remote_cause"] == served[0]["cause"]
        assert proxy.stats()["causes_remapped"] == 1

    def test_remap_without_tracing_hands_back_no_cause(self, world):
        proxy = proxy_for(world, FakeRemote(world.service.handle_frame))
        result = proxy.query("appp", "congestion")
        assert result.cause is None
        assert proxy.stats()["causes_remapped"] == 0


class TestControlPlane:
    def test_ping_echoes_the_server_clock(self, world):
        world.sim.schedule(5.0, lambda: None)
        world.sim.run(until=5.0)
        control = proxy_for(world, owner=CONTROL_OWNER, kind="")
        result = control.query(CONTROL_OWNER, "__ping__")
        assert result.payload["t"] == pytest.approx(5.0)

    def test_exported_queries_lists_routable_pairs(self, world):
        control = proxy_for(world, owner=CONTROL_OWNER, kind="")
        result = control.query(CONTROL_OWNER, "__queries__")
        assert result.payload == [{"owner": "isp", "query": "congestion"}]

    def test_msg_ids_are_monotonic(self, world):
        proxy = proxy_for(world)
        proxy.query("appp", "congestion")
        proxy.query("appp", "congestion")
        assert proxy._next_msg_id == 2
        assert proxy.queries_sent == 2
