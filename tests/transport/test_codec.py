"""The ``eona-msg/1`` codec: round trips, coercion, envelope hygiene."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.interfaces import QueryResult
from repro.core.schemas import (
    SCHEMA_VERSION,
    CongestionSignal,
    DemandEstimate,
    PeeringDecision,
    PeeringPointInfo,
    QoeAggregate,
    SchemaError,
    ServerHintInfo,
)
from repro.transport import (
    WIRE_VERSION,
    CodecError,
    ErrorReply,
    QueryReply,
    QueryRequest,
    decode,
    encode,
    wire_types,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
name = st.text(max_size=20)


class TestEnvelope:
    def test_wire_and_schema_versions_travel_in_every_frame(self):
        frame = json.loads(encode(QueryRequest(
            owner="isp", requester="appp", query="congestion", msg_id=1,
        )))
        assert frame["v"] == WIRE_VERSION == "eona-msg/1"
        assert frame["schemas"] == SCHEMA_VERSION
        assert frame["type"] == "QueryRequest"

    def test_frames_are_canonical_sorted_key_json(self):
        frame = encode(DemandEstimate(time=1.0, demand_mbps={"b": 2.0, "a": 1.0}))
        assert frame == json.dumps(json.loads(frame), sort_keys=True)

    def test_every_registered_wire_type_is_known(self):
        assert {
            "QoeAggregate", "DemandEstimate", "PeeringPointInfo",
            "PeeringDecision", "CongestionSignal", "ServerHintInfo",
            "QueryRequest", "QueryReply", "ErrorReply", "QueryResult",
        } <= set(wire_types())

    @pytest.mark.parametrize("mangle, match", [
        (lambda f: "not json", "frame"),
        (lambda f: json.dumps({"v": "eona-msg/9", "schemas": SCHEMA_VERSION,
                               "type": "QueryRequest", "body": {}}), "version"),
        (lambda f: json.dumps({"v": WIRE_VERSION, "schemas": SCHEMA_VERSION,
                               "type": "Mystery", "body": {}}), "Mystery"),
        (lambda f: json.dumps(json.loads(f)["body"]), "envelope"),
    ])
    def test_bad_frames_raise_codec_error(self, mangle, match):
        frame = encode(PeeringDecision(time=1.0, cdn="x", selected_peering="B"))
        with pytest.raises(CodecError, match=match):
            decode(mangle(frame))

    def test_missing_required_field_is_a_codec_error(self):
        frame = json.loads(encode(CongestionSignal(
            time=1.0, scope="access", congested=True, severity=0.5,
        )))
        del frame["body"]["scope"]
        with pytest.raises(CodecError, match="scope"):
            decode(json.dumps(frame))

    def test_nan_payloads_are_rejected_at_encode_time(self):
        with pytest.raises(ValueError):
            encode(PeeringDecision(
                time=float("nan"), cdn="x", selected_peering="B",
            ))


class TestFromDict:
    def test_unknown_keys_are_ignored(self):
        signal = CongestionSignal.from_dict({
            "time": 1.0, "scope": "access", "congested": True,
            "severity": 0.5, "added_in_v2": "future",
        })
        assert signal.scope == "access"

    def test_ints_coerce_to_declared_floats(self):
        estimate = DemandEstimate.from_dict(
            {"time": 3, "demand_mbps": {"x": 5}}
        )
        assert estimate.time == 3.0 and isinstance(estimate.time, float)
        assert estimate.demand_mbps == {"x": 5.0}
        assert isinstance(estimate.demand_mbps["x"], float)

    def test_bool_does_not_pass_as_float(self):
        with pytest.raises(SchemaError, match="severity"):
            CongestionSignal.from_dict({
                "time": 1.0, "scope": "access", "congested": True,
                "severity": True,
            })

    def test_strings_do_not_pass_as_bool(self):
        with pytest.raises(SchemaError, match="congested"):
            CongestionSignal.from_dict({
                "time": 1.0, "scope": "access", "congested": "yes",
                "severity": 0.5,
            })

    def test_defaults_fill_omitted_optional_fields(self):
        signal = CongestionSignal.from_dict({
            "time": 1.0, "scope": "access", "congested": False,
            "severity": 0.0,
        })
        assert signal.bottleneck_link == ""


class TestPayloadRoundTrips:
    """Satellite (a): every I2A/A2I payload survives the wire, exactly."""

    @given(window_start=finite, window_s=finite, cdn=name, isp=name,
           sessions=st.integers(0, 10**9), buffering_ratio=finite,
           mean_bitrate_mbps=finite, join_time_s=finite,
           abandonment_rate=finite)
    def test_qoe_aggregate(self, **kwargs):
        self._roundtrip(QoeAggregate(**kwargs))

    @given(time=finite,
           demand_mbps=st.dictionaries(name, finite, max_size=8))
    def test_demand_estimate(self, **kwargs):
        self._roundtrip(DemandEstimate(**kwargs))

    @given(peering_node=name, cdn=name, capacity_mbps=finite,
           load_mbps=finite, congested=st.booleans())
    def test_peering_point_info(self, **kwargs):
        self._roundtrip(PeeringPointInfo(**kwargs))

    @given(time=finite, cdn=name, selected_peering=name)
    def test_peering_decision(self, **kwargs):
        self._roundtrip(PeeringDecision(**kwargs))

    @given(time=finite, scope=name, congested=st.booleans(),
           severity=finite, bottleneck_link=name)
    def test_congestion_signal(self, **kwargs):
        self._roundtrip(CongestionSignal(**kwargs))

    @given(cdn=name, server_id=name, node_id=name, load=finite,
           degraded=st.booleans())
    def test_server_hint_info(self, **kwargs):
        self._roundtrip(ServerHintInfo(**kwargs))

    @staticmethod
    def _roundtrip(message):
        decoded = decode(encode(message))
        assert decoded == message
        assert type(decoded) is type(message)
        # A second pass is byte-stable (canonical form is a fixpoint).
        assert encode(decoded) == encode(message)


class TestRpcMessages:
    def test_query_request_round_trips_with_params(self):
        request = QueryRequest(
            owner="isp", requester="appp", query="congestion",
            msg_id=42, params={"since": 3, "limit": 10},
        )
        assert decode(encode(request)) == request

    def test_query_reply_flattens_and_rebuilds_a_query_result(self):
        result = QueryResult(
            query="congestion", payload=[{"severity": 0.5}],
            age_s=2.5, cause=17,
        )
        reply = QueryReply.from_result(msg_id=7, served_at=123.0, result=result)
        wired = decode(encode(reply))
        assert wired.served_at == 123.0
        rebuilt = wired.to_result()
        assert rebuilt.query == result.query
        assert rebuilt.payload == result.payload
        assert rebuilt.age_s == result.age_s
        assert rebuilt.cause == result.cause

    def test_error_reply_round_trips(self):
        reply = ErrorReply(msg_id=3, error="AccessDeniedError", message="no")
        assert decode(encode(reply)) == reply
