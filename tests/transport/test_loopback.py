"""LoopbackTransport: sync parity, fault knobs, pipelined sim timing."""

from __future__ import annotations

import pytest

from repro.core.interfaces import GlassUnavailableError
from repro.obs import spans
from repro.transport import (
    FaultKnobs,
    LoopbackTransport,
    RemoteLookingGlass,
    TransportClosed,
    TransportTimeout,
    create_transport,
    transport_names,
)


def proxy_for(world, transport, **kwargs):
    return RemoteLookingGlass(
        transport, owner="isp", kind="i2a",
        clock=lambda: world.sim.now, **kwargs,
    )


class TestRegistry:
    def test_builtin_adapters_are_registered(self):
        assert {"loopback", "tcp", "record", "replay"} <= set(transport_names())

    def test_create_transport_names_the_instance(self, world):
        transport = create_transport(
            "loopback", handler=world.service.handle_frame
        )
        assert transport.name == "loopback"
        assert transport.in_process is True

    def test_unknown_adapter_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown transport"):
            create_transport("carrier-pigeon")


class TestSynchronous:
    def test_zero_latency_matches_a_direct_glass_call(self, world):
        transport = LoopbackTransport(world.service.handle_frame)
        remote = proxy_for(world, transport).query("appp", "congestion")
        local = world.glass.query("appp", "congestion")
        assert remote.payload == local.payload
        assert remote.age_s == local.age_s
        assert remote.query == local.query == "congestion"
        assert world.served == 2

    def test_frame_stats_count_the_round_trip(self, world):
        transport = LoopbackTransport(world.service.handle_frame)
        proxy_for(world, transport).query("appp", "congestion")
        assert transport.stats() == {
            "frames_sent": 1, "frames_received": 1, "frames_dropped": 0,
        }

    def test_drop_knob_drops_every_nth_request(self, world):
        transport = LoopbackTransport(
            world.service.handle_frame, knobs=FaultKnobs(drop_every=3)
        )
        transport.request("x", 1.0)
        transport.request("x", 1.0)
        with pytest.raises(TransportTimeout, match="dropped"):
            transport.request("x", 1.0)
        assert transport.frames_dropped == 1

    def test_proxy_retry_rides_over_a_single_drop(self, world):
        # Every 3rd request is dropped; one retry re-sends, so the
        # caller never sees an error and the retry counter records it.
        transport = LoopbackTransport(
            world.service.handle_frame, knobs=FaultKnobs(drop_every=3)
        )
        proxy = proxy_for(world, transport, retries=1)
        for _ in range(6):
            proxy.query("appp", "congestion")
        assert proxy.queries_failed == 0
        assert proxy.retries_used == 2
        assert transport.frames_dropped == 2

    def test_closed_transport_surfaces_as_glass_unavailable(self, world):
        transport = LoopbackTransport(world.service.handle_frame)
        transport.close()
        with pytest.raises(TransportClosed):
            transport.request("x", 1.0)
        with pytest.raises(GlassUnavailableError):
            proxy_for(world, transport, retries=0).query("appp", "congestion")

    def test_transport_events_carry_no_cause_ids(self, world):
        transport = LoopbackTransport(world.service.handle_frame)
        proxy = proxy_for(world, transport)
        with spans.capture() as events:
            proxy.query("appp", "congestion")
        wire = [e for e in events if e["kind"].startswith("transport.")]
        assert {e["kind"] for e in wire} == {"transport.send", "transport.recv"}
        assert all("cause" not in e for e in wire)
        # The glass's own served-query event keeps its cause as usual.
        hints = [e for e in events if e["kind"] == "i2a-hint"]
        assert len(hints) == 1 and hints[0]["cause"] is not None


class TestPipelined:
    def test_latency_without_a_sim_is_rejected(self, world):
        with pytest.raises(ValueError, match="needs a sim"):
            LoopbackTransport(
                world.service.handle_frame, knobs=FaultKnobs(latency_s=2.0)
            )

    def test_sync_request_refuses_the_pipelined_path(self, world):
        transport = LoopbackTransport(
            world.service.handle_frame, sim=world.sim,
            knobs=FaultKnobs(latency_s=2.0),
        )
        assert transport.pipelined
        with pytest.raises(TransportTimeout, match="pipelined"):
            transport.request("x", 1.0)

    def test_replies_arrive_one_delivery_behind(self, world):
        transport = LoopbackTransport(
            world.service.handle_frame, sim=world.sim,
            knobs=FaultKnobs(latency_s=4.0),
        )
        proxy = proxy_for(world, transport)
        # Nothing delivered yet: the first call is a (countable) miss.
        with pytest.raises(GlassUnavailableError, match="no answer"):
            proxy.query("appp", "congestion")
        world.sim.run(until=4.0)
        result = proxy.query("appp", "congestion")
        # The glass served at +latency/2, on the server's sim clock.
        assert result.payload[0]["time"] == pytest.approx(2.0)
        assert proxy.queries_failed == 1
        assert proxy.queries_answered == 1

    def test_delivered_answers_age_by_transit_dwell(self, world):
        transport = LoopbackTransport(
            world.service.handle_frame, sim=world.sim,
            knobs=FaultKnobs(latency_s=4.0),
        )
        proxy = proxy_for(world, transport)
        with pytest.raises(GlassUnavailableError):
            proxy.query("appp", "congestion")
        world.sim.run(until=10.0)
        # Served at t=2, read at t=10: eight seconds of dwell.
        result = proxy.query("appp", "congestion")
        assert result.age_s == pytest.approx(8.0)

    def test_stale_answers_count_as_unavailable(self, world):
        transport = LoopbackTransport(
            world.service.handle_frame, sim=world.sim,
            knobs=FaultKnobs(latency_s=4.0),
        )
        proxy = proxy_for(world, transport, max_result_age_s=5.0)
        with pytest.raises(GlassUnavailableError):
            proxy.query("appp", "congestion")
        world.sim.run(until=4.0)
        proxy.query("appp", "congestion")  # fresh: delivered at t=4
        # Stop serving new replies; the cached answer decays past the cap.
        transport.close()
        world.sim.run(until=20.0)
        with pytest.raises(GlassUnavailableError, match="old"):
            proxy.query("appp", "congestion")

    def test_reorder_knob_holds_a_reply_back_one_round_trip(self, world):
        transport = LoopbackTransport(
            world.service.handle_frame, sim=world.sim,
            knobs=FaultKnobs(latency_s=4.0, reorder_every=2),
        )
        deliveries = []
        transport.send_request("a", lambda frame: deliveries.append(("a", world.sim.now)))
        transport.send_request("b", lambda frame: deliveries.append(("b", world.sim.now)))
        world.sim.run(until=20.0)
        # b (seq 2) is held a full extra round trip and lands after a.
        assert [tag for tag, _ in deliveries] == ["a", "b"]
        times = dict(deliveries)
        assert times["a"] == pytest.approx(4.0)
        assert times["b"] == pytest.approx(8.0)
