"""Graceful degradation: dead or lying glasses must not break EONA loops."""

import pytest

from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.appp import EonaAppP
from repro.core.context import build_context
from repro.core.infp import EonaInfP
from repro.core.interfaces import LookingGlass
from repro.core.registry import OptInRegistry
from repro.faults import FaultInjector, PlanBuilder
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.sdn.te import EgressGroup
from repro.simkernel.kernel import Simulator


def _appp_world():
    """One CDN plus an ISP I2A glass the AppP polls every 5s."""
    sim = Simulator(seed=9)
    topo = Topology()
    topo.add_node("x1", NodeKind.SERVER)
    topo.add_node("core", NodeKind.ROUTER)
    topo.add_node("client", NodeKind.CLIENT)
    topo.add_link("x1", "core", 100.0)
    topo.add_link("core", "client", 50.0)
    FluidNetwork(sim, topo)
    cdn = Cdn("cdnX", [CdnServer("x1", "x1", 100)])
    registry = OptInRegistry()
    registry.grant("isp", "appp")
    glass = LookingGlass(sim, "isp", registry)
    glass.register("congestion", lambda: [])
    return sim, cdn, glass


def _policy(sim, cdn, glass, **kwargs):
    kwargs.setdefault("glass_error_threshold", 2)
    kwargs.setdefault("reengage_ticks", 2)
    return EonaAppP(sim, [cdn], isp_i2a=glass, **kwargs)


class TestAppPFallback:
    def test_outage_trips_fallback_and_recovery_reengages(self):
        sim, cdn, glass = _appp_world()
        policy = _policy(sim, cdn, glass)
        sim.schedule_at(10.0, glass.set_available, False)
        sim.schedule_at(40.0, glass.set_available, True)
        sim.run(until=30.0)
        # Governor ticks at 15, 20, ... -> threshold (2) reached by 20s.
        assert policy.fallback_active
        assert policy.fallback_activations == 1
        assert policy.glass_errors >= 2
        sim.run(until=60.0)
        assert not policy.fallback_active
        assert policy.fallback_reengagements == 1

    def test_loop_survives_and_does_not_oscillate_on_flapping_glass(self):
        sim, cdn, glass = _appp_world()
        policy = _policy(sim, cdn, glass, reengage_ticks=3)
        # Down 10s of every 20s: single good probes between outages must
        # not re-engage (3 consecutive successes needed).
        for start in range(10, 200, 20):
            sim.schedule_at(float(start), glass.set_available, False)
            sim.schedule_at(float(start) + 10.0, glass.set_available, True)
        sim.run(until=205.0)
        assert policy.fallback_activations == 1
        assert policy.fallback_reengagements == 0
        sim.run(until=260.0)  # glass stays up: now it may re-engage
        assert policy.fallback_reengagements == 1

    def test_disabled_fallback_counts_errors_but_never_trips(self):
        sim, cdn, glass = _appp_world()
        policy = _policy(sim, cdn, glass, fallback_enabled=False)
        glass.set_available(False)
        sim.run(until=100.0)
        assert policy.glass_errors > 2
        assert not policy.fallback_active
        assert policy.fallback_activations == 0

    def test_access_denied_is_not_a_fault(self):
        sim, cdn, glass = _appp_world()
        policy = _policy(sim, cdn, glass)
        glass.registry = OptInRegistry()  # all grants revoked
        sim.run(until=100.0)
        assert policy.glass_errors == 0
        assert not policy.fallback_active

    def test_over_stale_answers_count_as_failures(self):
        sim, cdn, glass = _appp_world()
        glass.register("congestion", lambda: [], refresh_period_s=5.0)
        policy = _policy(sim, cdn, glass, stale_tolerance_s=15.0)
        sim.schedule_at(10.0, glass.set_fault_mode, "freeze")
        sim.run(until=60.0)
        # Frozen at ~10s; by 25s+ the snapshot age exceeds 15s.
        assert policy.glass_errors >= 2
        assert policy.fallback_active
        sim.schedule_at(61.0, glass.set_fault_mode, None)
        sim.run(until=90.0)
        assert not policy.fallback_active
        assert policy.fallback_reengagements == 1

    def test_fallback_lifts_caps(self):
        sim, cdn, glass = _appp_world()
        policy = _policy(sim, cdn, glass)
        policy.global_cap_mbps = 0.3
        glass.set_available(False)
        sim.run(until=30.0)
        assert policy.fallback_active
        assert policy.global_cap_mbps == float("inf")


class TestInfPFallback:
    def _world(self):
        topo = Topology("infp")
        topo.add_node("cdn1", NodeKind.SERVER, owner="cdn1")
        topo.add_node("core", NodeKind.ROUTER, owner="isp")
        topo.add_node("client", NodeKind.CLIENT, owner="isp")
        topo.add_link("cdn1", "core", 100.0, tags=("peering",))
        topo.add_link("core", "client", 50.0, tags=("access",))
        return build_context(topology=topo, seed=4)

    def _a2i(self, ctx, fail=True):
        glass = LookingGlass(ctx.sim, "appp", ctx.registry)

        def demand():
            if fail:
                raise RuntimeError("a2i backend crashed")
            return {"demand_mbps": {"cdn1": 10.0}}

        glass.register("demand_estimate", demand)
        ctx.registry.grant("appp", "isp")
        return glass

    def test_a2i_failures_trip_fallback_without_crashing_te(self):
        ctx = self._world()
        glass = self._a2i(ctx, fail=True)
        group = EgressGroup(
            name="cdn1", remote="cdn1", candidates=["cdn1"],
            egress_links={"cdn1": "cdn1->core"},
        )
        infp = EonaInfP(
            ctx,
            groups=[group],
            appp_a2i=glass,
            access_links=["core->client"],
            te_period_s=30.0,
            glass_error_threshold=2,
        )
        ctx.sim.run(until=200.0)  # several TE rounds, every query raising
        assert infp.glass_errors >= 2
        assert infp.fallback_active
        assert infp.fallback_activations == 1
        infp.stop()

    def test_provider_restart_wipes_soft_state(self):
        ctx = self._world()
        infp = EonaInfP(ctx, access_links=["core->client"], stats_period_s=2.0)
        injector = FaultInjector(ctx)
        injector.register_provider("isp", infp.reset_soft_state)
        injector.install(
            PlanBuilder("p").restart_provider("isp", at=19.0).build()
        )
        probes = []
        ctx.sim.schedule_at(
            18.5, lambda: probes.append(len(infp.stats.samples_for("core->client")))
        )
        ctx.sim.schedule_at(
            19.5, lambda: probes.append(len(infp.stats.samples_for("core->client")))
        )
        ctx.sim.run(until=30.0)
        assert probes[0] > 0       # history accumulated before the restart
        assert probes[1] == 0      # wiped at 19s; rebuilds from the 20s poll
        assert injector.counters()["faults.provider_restart"] == 1
        infp.stop()
