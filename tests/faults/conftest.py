"""Keep the process-global tracer clean around fault-injection tests."""

from __future__ import annotations

import pytest

from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def _clean_tracer():
    TRACER.close()
    yield
    TRACER.close()
