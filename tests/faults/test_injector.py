"""FaultInjector: target validation, apply/revert symmetry, determinism."""

import pytest

from repro.core.context import build_context
from repro.core.interfaces import GlassUnavailableError, LookingGlass
from repro.core.registry import OptInRegistry
from repro.faults import (
    KILL_CAPACITY_MBPS,
    FaultInjector,
    PlanBuilder,
    PlanError,
)
from repro.network.topology import NodeKind, Topology
from repro.obs.trace import TRACER


def _world(seed=0):
    """Two streams share an undersized uplink: a -> core -> {c0, c1}."""
    topo = Topology("inj")
    topo.add_node("a", NodeKind.SERVER, owner="cdn")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_link("a", "core", 60.0, delay_ms=5, owner="isp")
    for index in range(2):
        node = f"c{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("core", node, 50.0, delay_ms=2, owner="isp")
    ctx = build_context(topology=topo, seed=seed)
    streams = [
        ctx.network.start_stream("a", f"c{index}", 40.0) for index in range(2)
    ]
    return ctx, streams


def _recovering_plan():
    return (
        PlanBuilder("inj-test")
        .flap_link("a->core", at=10.0, until=60.0, down_s=5.0, period_s=20.0,
                   factor=0.5)
        .kill_link("core->c0", at=25.0, until=45.0)
        .build()
    )


class TestTargetValidation:
    def test_unknown_link_fails_at_install(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        plan = PlanBuilder("p").kill_link("no->such", at=1.0).build()
        with pytest.raises(PlanError, match="unknown link"):
            injector.install(plan)
        # Nothing was scheduled: the sim runs to the horizon untouched.
        ctx.sim.run(until=5.0)
        assert injector.counters() == {}

    def test_unknown_glass_fails_at_install(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        plan = PlanBuilder("p").glass_outage("ghost", at=1.0).build()
        with pytest.raises(PlanError, match="unknown glass"):
            injector.install(plan)

    def test_unknown_provider_fails_at_install(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        plan = PlanBuilder("p").restart_provider("ghost", at=1.0).build()
        with pytest.raises(PlanError, match="unknown provider"):
            injector.install(plan)

    def test_installed_plans_listed(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        plan = _recovering_plan()
        injector.install(plan)
        assert injector.installed_plans == [plan]


class TestLinkFaults:
    def test_cut_factor_and_exact_restore(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        plan = PlanBuilder("p").cut_link("a->core", at=10.0, factor=0.5,
                                         until=20.0).build()
        injector.install(plan)
        link = ctx.network.topology.link("a->core")
        ctx.sim.run(until=15.0)
        assert link.capacity_mbps == 30.0
        ctx.sim.run(until=25.0)
        assert link.capacity_mbps == 60.0

    def test_repeated_cuts_keep_original_baseline(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        plan = (
            PlanBuilder("p")
            .cut_link("a->core", at=10.0, factor=0.5)
            .cut_link("a->core", at=20.0, factor=0.5)
            .restore_link("a->core", at=30.0)
            .build()
        )
        injector.install(plan)
        link = ctx.network.topology.link("a->core")
        ctx.sim.run(until=25.0)
        # Second cut applies to the *original* 60, not the cut 30.
        assert link.capacity_mbps == 30.0
        ctx.sim.run(until=35.0)
        assert link.capacity_mbps == 60.0

    def test_kill_uses_floor_capacity(self):
        ctx, streams = _world()
        injector = FaultInjector(ctx)
        injector.install(PlanBuilder("p").kill_link("core->c0", at=5.0).build())
        ctx.sim.run(until=10.0)
        assert ctx.network.topology.link("core->c0").capacity_mbps == KILL_CAPACITY_MBPS
        assert streams[0].rate_mbps <= KILL_CAPACITY_MBPS

    def test_restore_of_never_faulted_link_is_noop(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        injector.install(PlanBuilder("p").restore_link("a->core", at=5.0).build())
        ctx.sim.run(until=10.0)
        assert ctx.network.topology.link("a->core").capacity_mbps == 60.0

    def test_apply_revert_symmetry_allocation_equivalence(self):
        """A fully recovered plan leaves allocations exactly as a clean run."""
        clean_ctx, clean_streams = _world(seed=3)
        clean_ctx.sim.run(until=100.0)

        faulted_ctx, faulted_streams = _world(seed=3)
        injector = FaultInjector(faulted_ctx)
        injector.install(_recovering_plan())
        faulted_ctx.sim.run(until=30.0)
        mid = [s.rate_mbps for s in faulted_streams]
        faulted_ctx.sim.run(until=100.0)

        # Mid-fault the worlds diverged (the leaf kill bit)...
        assert mid[0] <= KILL_CAPACITY_MBPS
        # ...but post-recovery every rate and capacity matches exactly.
        for clean, faulted in zip(clean_streams, faulted_streams):
            assert faulted.rate_mbps == pytest.approx(clean.rate_mbps, abs=1e-9)
        for link_id in ("a->core", "core->c0", "core->c1"):
            assert (
                faulted_ctx.network.topology.link(link_id).capacity_mbps
                == clean_ctx.network.topology.link(link_id).capacity_mbps
            )


class TestGlassAndProviderFaults:
    def _glass(self, ctx):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        glass = LookingGlass(ctx.sim, "isp", registry)
        glass.register("ping", lambda: {"pong": 1})
        return glass

    def test_outage_window(self):
        ctx, _ = _world()
        glass = self._glass(ctx)
        injector = FaultInjector(ctx)
        injector.register_glass("isp", glass)
        injector.install(PlanBuilder("p").glass_outage("isp", at=10.0,
                                                       until=20.0).build())
        seen = []

        def probe():
            try:
                glass.query("appp", "ping")
                seen.append("ok")
            except GlassUnavailableError:
                seen.append("down")

        for time in (5.0, 15.0, 25.0):
            ctx.sim.schedule_at(time, probe)
        ctx.sim.run(until=30.0)
        assert seen == ["ok", "down", "ok"]
        assert glass.queries_failed == 1

    def test_query_fault_modes_driven(self):
        ctx, _ = _world()
        glass = self._glass(ctx)
        injector = FaultInjector(ctx)
        injector.register_glass("isp", glass)
        injector.install(
            PlanBuilder("p")
            .delay_queries("isp", delay_s=30.0, at=10.0, until=20.0)
            .drop_queries("isp", at=30.0, until=40.0)
            .build()
        )
        ages = []
        ctx.sim.schedule_at(15.0, lambda: ages.append(
            glass.query("appp", "ping").age_s))
        ctx.sim.schedule_at(25.0, lambda: ages.append(
            glass.query("appp", "ping").age_s))
        ctx.sim.schedule_at(
            35.0, lambda: ages.append(glass.fault_mode))
        ctx.sim.schedule_at(
            45.0, lambda: ages.append(glass.fault_mode))
        ctx.sim.run(until=50.0)
        assert ages == [30.0, 0.0, "drop", None]

    def test_provider_restart_calls_reset(self):
        ctx, _ = _world()
        calls = []
        injector = FaultInjector(ctx)
        injector.register_provider("isp", lambda: calls.append(ctx.sim.now))
        injector.install(PlanBuilder("p").restart_provider("isp", at=12.0).build())
        ctx.sim.run(until=20.0)
        assert calls == [12.0]


class TestCountersAndTrace:
    def test_counters_split_inject_recover_and_kind(self):
        ctx, _ = _world()
        injector = FaultInjector(ctx)
        injector.install(_recovering_plan())
        ctx.sim.run(until=100.0)
        counters = injector.counters()
        assert counters["faults.injected"] == 4
        assert counters["faults.recovered"] == 4
        assert counters["faults.link_cut"] == 3
        assert counters["faults.link_kill"] == 1
        assert counters["faults.link_restore"] == 4

    def test_fault_events_traced(self):
        TRACER.enable(capacity=4096)
        ctx, _ = _world()  # build_context binds the tracer clock
        injector = FaultInjector(ctx)
        injector.install(_recovering_plan())
        ctx.sim.run(until=100.0)
        counts = TRACER.kind_counts()
        assert counts.get("fault-inject") == 4
        assert counts.get("fault-recover") == 4

    def test_same_seed_fault_traces_byte_identical(self):
        def run_once():
            TRACER.enable(capacity=65536)
            ctx, _ = _world(seed=11)
            injector = FaultInjector(ctx)
            injector.install(_recovering_plan())
            ctx.sim.run(until=100.0)
            text = TRACER.to_jsonl()
            TRACER.close()
            return text

        first, second = run_once(), run_once()
        assert "fault-inject" in first
        assert first == second
