"""FaultPlan / FaultEvent validation, the builder DSL, and the registry."""

import random

import pytest

from repro.faults import (
    EVENT_KINDS,
    FaultEvent,
    FaultPlan,
    PlanBuilder,
    PlanError,
    get_plan,
    named_plans,
    register_plan,
)


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(PlanError):
            FaultEvent(-1.0, "glass-outage", "isp")

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError):
            FaultEvent(0.0, "meteor-strike", "isp")

    def test_empty_target_rejected(self):
        with pytest.raises(PlanError):
            FaultEvent(0.0, "glass-outage", "")

    def test_query_delay_needs_delay_param(self):
        with pytest.raises(PlanError):
            FaultEvent(0.0, "query-delay", "isp")
        FaultEvent(0.0, "query-delay", "isp", {"delay_s": 5.0})

    def test_link_cut_needs_capacity_or_factor(self):
        with pytest.raises(PlanError):
            FaultEvent(0.0, "link-cut", "a->b")
        FaultEvent(0.0, "link-cut", "a->b", {"factor": 0.5})
        FaultEvent(0.0, "link-cut", "a->b", {"capacity_mbps": 10.0})

    def test_params_must_be_numeric(self):
        with pytest.raises(PlanError):
            FaultEvent(0.0, "link-cut", "a->b", {"capacity_mbps": "ten"})
        with pytest.raises(PlanError):
            FaultEvent(0.0, "link-cut", "a->b", {"capacity_mbps": True})

    def test_recovery_classification(self):
        assert FaultEvent(1.0, "link-restore", "a->b").is_recovery
        assert FaultEvent(1.0, "glass-recover", "isp").is_recovery
        assert FaultEvent(1.0, "query-clear", "isp").is_recovery
        assert not FaultEvent(1.0, "glass-outage", "isp").is_recovery

    def test_every_kind_constructible(self):
        params = {"query-delay": {"delay_s": 1.0}, "link-cut": {"factor": 0.5}}
        for kind in EVENT_KINDS:
            FaultEvent(0.0, kind, "t", params.get(kind, {}))


class TestFaultPlan:
    def test_events_sorted_by_time_insertion_stable(self):
        early = FaultEvent(5.0, "glass-outage", "isp")
        late = FaultEvent(9.0, "glass-recover", "isp")
        tie_a = FaultEvent(5.0, "link-kill", "a->b")
        plan = FaultPlan("p", (late, early, tie_a))
        assert plan.events == (early, tie_a, late)

    def test_needs_name(self):
        with pytest.raises(PlanError):
            FaultPlan("", ())

    def test_horizon_targets_len(self):
        plan = FaultPlan(
            "p",
            (
                FaultEvent(3.0, "glass-outage", "isp"),
                FaultEvent(7.0, "link-kill", "a->b"),
            ),
        )
        assert plan.horizon_s == 7.0
        assert plan.targets() == ["a->b", "isp"]
        assert len(plan) == 2
        assert FaultPlan("empty", ()).horizon_s == 0.0

    def test_describe_mentions_every_event(self):
        plan = (
            PlanBuilder("demo", "a demo plan")
            .glass_outage("isp", at=1.0, until=2.0)
            .build()
        )
        text = plan.describe()
        assert "demo" in text and "glass-outage" in text and "glass-recover" in text


class TestPlanBuilder:
    def test_cut_with_until_emits_restore(self):
        plan = PlanBuilder("p").cut_link("a->b", at=10.0, factor=0.5, until=20.0).build()
        assert [e.kind for e in plan.events] == ["link-cut", "link-restore"]
        assert plan.events[1].time_s == 20.0

    def test_kill_and_partition(self):
        plan = PlanBuilder("p").partition(["a->b", "b->c"], at=5.0, until=9.0).build()
        kinds = [(e.kind, e.target) for e in plan.events]
        assert ("link-kill", "a->b") in kinds and ("link-kill", "b->c") in kinds
        assert sum(1 for k, _ in kinds if k == "link-restore") == 2
        with pytest.raises(PlanError):
            PlanBuilder("p").partition([], at=5.0)

    def test_flap_square_wave_ends_restored(self):
        plan = (
            PlanBuilder("p")
            .flap_link("a->b", at=0.0, until=100.0, down_s=10.0, period_s=30.0,
                       factor=0.2)
            .build()
        )
        cuts = [e for e in plan.events if e.kind == "link-cut"]
        restores = [e for e in plan.events if e.kind == "link-restore"]
        assert len(cuts) == len(restores) == 4
        # The 4th down interval (at t=90) would overrun; its restore clamps.
        assert restores[-1].time_s == 100.0
        assert plan.events[-1].kind == "link-restore"

    def test_flap_validation(self):
        with pytest.raises(PlanError):
            PlanBuilder("p").flap_link("a->b", at=10.0, until=10.0, down_s=1.0,
                                       period_s=5.0, factor=0.5)
        with pytest.raises(PlanError):
            PlanBuilder("p").flap_link("a->b", at=0.0, until=10.0, down_s=5.0,
                                       period_s=5.0, factor=0.5)

    def test_random_flaps_seed_stable_and_paired(self):
        def build(seed):
            return (
                PlanBuilder("p")
                .random_flaps("a->b", random.Random(seed), at=0.0, until=500.0,
                              rate_per_s=0.02, mean_down_s=10.0, factor=0.1)
                .build()
            )

        first, again, other = build(7), build(7), build(8)
        assert first.events == again.events
        assert first.events != other.events
        kinds = [e.kind for e in first.events]
        assert kinds.count("link-cut") == kinds.count("link-restore")
        assert all(e.time_s <= 500.0 for e in first.events)

    def test_random_glass_outages_validation(self):
        with pytest.raises(PlanError):
            PlanBuilder("p").random_glass_outages(
                "isp", random.Random(1), at=0.0, until=10.0,
                rate_per_s=0.0, mean_outage_s=5.0,
            )

    def test_query_fault_helpers(self):
        plan = (
            PlanBuilder("p")
            .drop_queries("isp", at=1.0, until=2.0)
            .delay_queries("isp", delay_s=30.0, at=3.0, until=4.0)
            .freeze_queries("isp", at=5.0, until=6.0)
            .restart_provider("isp", at=7.0)
            .build()
        )
        kinds = [e.kind for e in plan.events]
        assert kinds == [
            "query-drop", "query-clear", "query-delay", "query-clear",
            "query-freeze", "query-clear", "provider-restart",
        ]
        assert plan.events[2].params["delay_s"] == 30.0


class TestNamedPlanRegistry:
    def test_e15_plans_registered_on_import(self):
        import repro.experiments.exp_e15_resilience  # noqa: F401

        names = [plan.name for plan in named_plans("e15")]
        assert names == ["e15-glass-outage", "e15-link-flap", "e15-stale-freeze"]
        for named in named_plans("e15"):
            assert len(named.factory()) > 0
            assert named.apply is not None

    def test_register_is_idempotent_for_same_owner(self):
        factory = lambda: FaultPlan("tmp", ())
        register_plan("test-tmp-plan", factory, experiment="test")
        register_plan("test-tmp-plan", factory, experiment="test")
        assert get_plan("test-tmp-plan").factory is factory

    def test_cross_experiment_clash_rejected(self):
        register_plan("test-owned-plan", lambda: FaultPlan("tmp", ()),
                      experiment="test-a")
        with pytest.raises(PlanError):
            register_plan("test-owned-plan", lambda: FaultPlan("tmp", ()),
                          experiment="test-b")

    def test_get_unknown_plan_lists_known(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            get_plan("no-such-plan")
