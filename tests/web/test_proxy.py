"""The caching web proxy (Figure 1(a)) and shared-object pages."""

import random

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.web.browser import Browser
from repro.web.page import WebPage, make_page, make_shared_pool
from repro.web.proxy import WebProxy


class TestProxyUnit:
    def test_miss_then_hit(self):
        proxy = WebProxy("px")
        hit, node = proxy.resolve("obj", 1.0)
        assert not hit and node == "px"
        hit, _ = proxy.resolve("obj", 1.0)
        assert hit

    def test_uncacheable_objects_never_hit(self):
        proxy = WebProxy("px")
        assert not proxy.resolve(None, 1.0)[0]
        assert not proxy.resolve(None, 1.0)[0]

    def test_hit_rate(self):
        proxy = WebProxy("px")
        proxy.resolve("a", 1.0)
        proxy.resolve("a", 1.0)
        assert proxy.hit_rate == pytest.approx(0.5)


class TestSharedPages:
    def test_pool_objects_reused_across_pages(self):
        rng = random.Random(0)
        pool = make_shared_pool(rng, n_objects=5)
        pages = [
            make_page(rng, f"p{i}", shared_pool=pool, shared_fraction=1.0,
                      n_objects_range=(5, 5))
            for i in range(2)
        ]
        keys = set(pages[0].object_keys) | set(pages[1].object_keys)
        assert keys <= {key for key, _ in pool}

    def test_unique_objects_have_no_keys(self):
        rng = random.Random(0)
        pool = make_shared_pool(rng, n_objects=5)
        page = make_page(rng, "p", shared_pool=pool, shared_fraction=0.0,
                         n_objects_range=(4, 4))
        assert all(key is None for key in page.object_keys)

    def test_key_size_alignment_validated(self):
        with pytest.raises(ValueError):
            WebPage("p", 0.1, (1.0, 2.0), object_keys=("a",))

    def test_invalid_shared_fraction(self):
        with pytest.raises(ValueError):
            make_page(random.Random(0), "p", shared_pool=[("k", 1.0)],
                      shared_fraction=1.5)


class TestBrowserWithProxy:
    def _world(self):
        sim = Simulator(seed=0)
        topo = Topology()
        topo.add_node("web", NodeKind.SERVER)
        topo.add_node("px", NodeKind.CACHE)
        topo.add_node("ue", NodeKind.CLIENT)
        topo.add_link("web", "px", 2.0, delay_ms=50)   # slow far side
        topo.add_link("px", "ue", 50.0, delay_ms=5)    # fast near side
        topo.add_link("web", "ue", 2.0, delay_ms=55)
        net = FluidNetwork(sim, topo)
        proxy = WebProxy("px")
        return sim, net, proxy

    def test_repeat_visits_get_faster(self):
        sim, net, proxy = self._world()
        browser = Browser(sim, net, "ue", "web", proxy=proxy)
        page = WebPage(
            "p", main_mbit=0.1,
            object_sizes_mbit=(2.0, 2.0),
            object_keys=("lib.js", "font.woff"),
        )
        plts = []
        browser.load_page(page, on_done=lambda r: plts.append(r.plt_s))
        sim.run()
        browser.load_page(page, on_done=lambda r: plts.append(r.plt_s))
        sim.run()
        assert plts[1] < plts[0] / 3  # warm proxy serves from nearby
        assert browser.records[1].proxy_hits == 2

    def test_unkeyed_objects_bypass_proxy(self):
        sim, net, proxy = self._world()
        browser = Browser(sim, net, "ue", "web", proxy=proxy)
        page = WebPage("p", main_mbit=0.1, object_sizes_mbit=(1.0,))
        browser.load_page(page)
        sim.run()
        browser.load_page(page)
        sim.run()
        assert browser.records[1].proxy_hits == 0

    def test_no_proxy_unchanged(self):
        sim, net, _ = self._world()
        browser = Browser(sim, net, "ue", "web")
        page = WebPage("p", 0.1, (1.0,), object_keys=("k",))
        browser.load_page(page)
        sim.run()
        assert browser.records[0].proxy_hits == 0
