"""Radio Markov model: transitions, capacity coupling, stats."""

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.web.radio import (
    DEFAULT_TRANSITIONS,
    STATE_CAPACITY_MBPS,
    RadioModel,
    RadioState,
    RadioStats,
)


def _world():
    sim = Simulator(seed=11)
    topo = Topology()
    topo.add_node("bs", NodeKind.BASE_STATION)
    topo.add_node("ue", NodeKind.CLIENT)
    link = topo.add_link("bs", "ue", 20.0, tags=("access",))
    net = FluidNetwork(sim, topo)
    return sim, net, link.link_id


class TestTransitions:
    def test_rows_are_stochastic(self):
        for state, row in DEFAULT_TRANSITIONS.items():
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(p >= 0 for p in row.values())

    def test_capacity_follows_state(self):
        sim, net, link_id = _world()
        radio = RadioModel(sim, net, link_id, sim.rng.get("radio"))
        sim.run(until=120.0)
        assert (
            net.topology.link(link_id).capacity_mbps
            == STATE_CAPACITY_MBPS[radio.state]
        )

    def test_visits_multiple_states(self):
        sim, net, link_id = _world()
        radio = RadioModel(sim, net, link_id, sim.rng.get("radio"))
        sim.run(until=600.0)
        visited = {
            state
            for state, seconds in radio.stats.seconds_in_state.items()
            if seconds > 0
        }
        assert len(visited) >= 3

    def test_handover_counted(self):
        sim, net, link_id = _world()
        radio = RadioModel(sim, net, link_id, sim.rng.get("radio"))
        sim.run(until=2000.0)
        assert radio.stats.handovers > 0
        assert radio.stats.transitions >= radio.stats.handovers

    def test_deterministic_given_seed(self):
        def run_once():
            sim, net, link_id = _world()
            radio = RadioModel(sim, net, link_id, sim.rng.get("radio"))
            sim.run(until=300.0)
            return radio.stats.transitions, radio.state

        assert run_once() == run_once()

    def test_stop_freezes(self):
        sim, net, link_id = _world()
        radio = RadioModel(sim, net, link_id, sim.rng.get("radio"))
        sim.run(until=50.0)
        radio.stop()
        transitions = radio.stats.transitions
        sim.run(until=500.0)
        assert radio.stats.transitions == transitions


class TestStats:
    def test_fraction(self):
        stats = RadioStats()
        stats.seconds_in_state["good"] = 30.0
        stats.seconds_in_state["poor"] = 10.0
        assert stats.fraction(RadioState.GOOD) == pytest.approx(0.75)

    def test_fraction_empty(self):
        assert RadioStats().fraction(RadioState.GOOD) == 0.0

    def test_diff(self):
        earlier = RadioStats()
        earlier.seconds_in_state["good"] = 10.0
        earlier.handovers = 1
        later = RadioStats()
        later.seconds_in_state["good"] = 25.0
        later.handovers = 3
        delta = later.diff(earlier)
        assert delta.seconds_in_state["good"] == 15.0
        assert delta.handovers == 2
