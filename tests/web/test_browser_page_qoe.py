"""Web pages, browser loads, and the PLT satisfaction curve."""

import random

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.web.browser import Browser
from repro.web.page import WebPage, make_page
from repro.web.qoe import satisfaction_from_plt


class TestPage:
    def test_make_page_within_ranges(self):
        rng = random.Random(0)
        page = make_page(rng, "p", n_objects_range=(5, 10),
                         object_mbit_range=(0.1, 0.5))
        assert 5 <= len(page.object_sizes_mbit) <= 10
        assert all(0.1 <= s <= 0.5 for s in page.object_sizes_mbit)
        assert page.object_count == len(page.object_sizes_mbit) + 1

    def test_total_size(self):
        page = WebPage("p", main_mbit=0.2, object_sizes_mbit=(0.3, 0.5))
        assert page.total_mbit == pytest.approx(1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            make_page(random.Random(0), "p", n_objects_range=(5, 2))


def _world(capacity=10.0):
    sim = Simulator(seed=0)
    topo = Topology()
    topo.add_node("web", NodeKind.SERVER)
    topo.add_node("ue", NodeKind.CLIENT)
    topo.add_link("web", "ue", capacity)
    net = FluidNetwork(sim, topo)
    return sim, net


class TestBrowser:
    def test_plt_accounts_for_all_objects(self):
        sim, net = _world(capacity=10.0)
        browser = Browser(sim, net, "ue", "web", parallelism=2)
        page = WebPage("p", main_mbit=1.0, object_sizes_mbit=(2.0, 2.0, 2.0))
        done = []
        browser.load_page(page, on_done=done.append)
        sim.run()
        record = done[0]
        # 7 Mbit over a 10 Mbps link, with parallelism just changing
        # interleaving: PLT = total/capacity = 0.7 s exactly.
        assert record.plt_s == pytest.approx(0.7)
        assert record.main_doc_s == pytest.approx(0.1)
        assert record.object_count == 4

    def test_empty_page_is_just_main_doc(self):
        sim, net = _world()
        browser = Browser(sim, net, "ue", "web")
        done = []
        browser.load_page(WebPage("p", 1.0, ()), on_done=done.append)
        sim.run()
        assert done[0].plt_s == pytest.approx(0.1)

    def test_parallelism_bounded(self):
        sim, net = _world()
        browser = Browser(sim, net, "ue", "web", parallelism=2)
        page = WebPage("p", main_mbit=0.1, object_sizes_mbit=tuple([1.0] * 8))
        peak = []

        def watch():
            peak.append(len(net.active_flows()))
            if net.active_flows():
                sim.schedule(0.05, watch)

        browser.load_page(page)
        sim.schedule(0.15, watch)
        sim.run()
        assert max(peak) <= 2

    def test_records_accumulate(self):
        sim, net = _world()
        browser = Browser(sim, net, "ue", "web")
        for i in range(3):
            browser.load_page(WebPage(f"p{i}", 0.5, (0.5,)))
        sim.run()
        assert len(browser.records) == 3

    def test_invalid_parallelism(self):
        sim, net = _world()
        with pytest.raises(ValueError):
            Browser(sim, net, "ue", "web", parallelism=0)


class TestSatisfaction:
    def test_monotone_decreasing(self):
        values = [satisfaction_from_plt(t) for t in (0.5, 2.0, 5.0, 10.0, 20.0)]
        assert values == sorted(values, reverse=True)

    def test_midpoint_is_half(self):
        assert satisfaction_from_plt(5.0, midpoint_s=5.0) == pytest.approx(0.5)

    def test_fast_load_near_one(self):
        assert satisfaction_from_plt(0.5) > 0.95

    def test_negative_plt_rejected(self):
        with pytest.raises(ValueError):
            satisfaction_from_plt(-1.0)
