"""Modes and the global-controller oracle."""

import pytest

from repro.baselines.modes import Mode
from repro.baselines.oracle import OracleAppP, oracle_te_policy
from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.video.abr import RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER
from repro.video.player import AdaptivePlayer


class TestModes:
    def test_interface_presence_flags(self):
        assert Mode.EONA.has_i2a and Mode.EONA.has_a2i
        assert Mode.I2A_ONLY.has_i2a and not Mode.I2A_ONLY.has_a2i
        assert Mode.A2I_ONLY.has_a2i and not Mode.A2I_ONLY.has_i2a
        assert not Mode.STATUS_QUO.has_i2a and not Mode.STATUS_QUO.has_a2i


def _world():
    sim = Simulator(seed=2)
    topo = Topology()
    topo.add_node("x1", NodeKind.SERVER)
    topo.add_node("x2", NodeKind.SERVER)
    topo.add_node("core", NodeKind.ROUTER)
    topo.add_node("client", NodeKind.CLIENT)
    topo.add_link("x1", "core", 100.0)
    topo.add_link("x2", "core", 100.0)
    access = topo.add_link("core", "client", 10.0, tags=("access",))
    net = FluidNetwork(sim, topo)
    cdn = Cdn(
        "cdnX",
        [
            CdnServer("x1", "x1", 100, degraded_rate_mbps=0.3),
            CdnServer("x2", "x2", 100),
        ],
    )
    catalog = ContentCatalog(n_items=2, duration_s=40.0)
    return sim, net, cdn, catalog, access.link_id


class TestOracleAppP:
    def test_assigns_to_healthy_server(self):
        sim, net, cdn, catalog, access = _world()
        policy = OracleAppP(sim, [cdn], network=net)
        player = AdaptivePlayer(
            sim, net, "s0", "client", catalog.by_rank(0),
            DEFAULT_LADDER, RateBasedAbr(), policy,
        )
        player.start()
        assert cdn.server_of("s0").server_id == "x2"
        sim.run(until=200.0)
        assert player.qoe().buffering_ratio < 0.01

    def test_caps_fleet_at_sustainable_rung(self):
        sim, net, cdn, catalog, access = _world()
        policy = OracleAppP(sim, [cdn], network=net, access_links=[access])
        players = []
        for index in range(4):
            player = AdaptivePlayer(
                sim, net, f"s{index}", "client", catalog.by_rank(0),
                DEFAULT_LADDER, RateBasedAbr(), policy,
            )
            players.append(player)
            player.start()
        # 4 sessions over a 10 Mbps access: 0.95*10/4 = 2.375 -> rung 1.5.
        assert policy.rate_cap_mbps(players[0]) == 1.5

    def test_cap_relaxes_with_population(self):
        sim, net, cdn, catalog, access = _world()
        policy = OracleAppP(sim, [cdn], network=net, access_links=[access])
        player = AdaptivePlayer(
            sim, net, "solo", "client", catalog.by_rank(0),
            DEFAULT_LADDER, RateBasedAbr(), policy,
        )
        player.start()
        assert policy.rate_cap_mbps(player) == 6.0


class TestOracleTePolicy:
    def test_places_by_true_demand(self):
        sim = Simulator(seed=0)
        topo = Topology()
        topo.add_node("cdnX", NodeKind.SERVER, owner="cdnX")
        topo.add_node("B", NodeKind.PEERING, owner="isp")
        topo.add_node("C", NodeKind.PEERING, owner="isp")
        topo.add_node("core", NodeKind.ROUTER, owner="isp")
        topo.add_node("client", NodeKind.CLIENT, owner="isp")
        topo.add_link("cdnX", "B", 1000.0, delay_ms=1.0)
        topo.add_link("cdnX", "C", 1000.0, delay_ms=5.0)
        topo.add_link("B", "core", 10.0, tags=("peering",))
        topo.add_link("C", "core", 100.0, tags=("peering",))
        topo.add_link("core", "client", 1000.0)
        net = FluidNetwork(sim, topo)

        from repro.sdn.controller import SdnController
        from repro.sdn.stats import StatsService
        from repro.sdn.te import EgressGroup, TrafficEngineeringApp

        controller = SdnController(net, owner="isp")
        stats = StatsService(sim, controller, period=2.0)
        group = EgressGroup(
            name="cdnX", remote="cdnX", candidates=["B", "C"],
            egress_links={"B": "B->core", "C": "C->core"}, preferred="B",
        )
        te = TrafficEngineeringApp(
            sim, net, controller, stats, [group], period=10.0,
            policy=oracle_te_policy(net),
        )
        net.start_stream("cdnX", "client", demand_mbps=30.0, owner="cdnX")
        sim.run(until=300.0)
        assert te.selection("cdnX") == "C"
        assert te.switch_count("cdnX") <= 1
