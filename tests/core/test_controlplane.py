"""The coordinated control plane: quality estimation and steering."""

import pytest

from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.controlplane import CdnQuality, CoordinatedAppP
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.video.abr import RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER
from repro.video.player import AdaptivePlayer


class TestCdnQuality:
    def test_first_observation_initializes(self):
        quality = CdnQuality()
        quality.observe(5.0, 0.0, alpha=0.2, now=1.0)
        assert quality.ewma_throughput_mbps == 5.0
        assert quality.chunks_observed == 1

    def test_ewma_converges_toward_new_level(self):
        quality = CdnQuality()
        quality.observe(10.0, 0.0, alpha=0.5, now=0.0)
        for _ in range(10):
            quality.observe(2.0, 0.0, alpha=0.5, now=0.0)
        assert quality.ewma_throughput_mbps == pytest.approx(2.0, abs=0.1)

    def test_stalls_penalize_score(self):
        healthy = CdnQuality()
        healthy.observe(5.0, 0.0, alpha=0.5, now=0.0)
        stalling = CdnQuality()
        stalling.observe(5.0, 2.0, alpha=0.5, now=0.0)
        assert stalling.score() < healthy.score()


def _world(cdn1_uplink=100.0, cdn2_uplink=100.0, seed=9):
    sim = Simulator(seed=seed)
    topo = Topology()
    topo.add_node("cdn1", NodeKind.SERVER)
    topo.add_node("cdn2", NodeKind.SERVER)
    topo.add_node("core", NodeKind.ROUTER)
    topo.add_node("client", NodeKind.CLIENT)
    topo.add_link("cdn1", "core", cdn1_uplink)
    topo.add_link("cdn2", "core", cdn2_uplink)
    topo.add_link("core", "client", 1000.0)
    net = FluidNetwork(sim, topo)
    cdns = [
        Cdn("cdn1", [CdnServer("cdn1.s", "cdn1", 100)]),
        Cdn("cdn2", [CdnServer("cdn2.s", "cdn2", 100)]),
    ]
    catalog = ContentCatalog(n_items=3, duration_s=60.0)
    return sim, net, cdns, catalog


def _play(sim, net, policy, catalog, session_id, client="client"):
    player = AdaptivePlayer(
        sim, net, session_id, client, catalog.by_rank(0),
        DEFAULT_LADDER, RateBasedAbr(), policy,
    )
    player.start()
    return player


class TestCoordinatedAppP:
    def test_validation(self):
        sim, net, cdns, catalog = _world()
        with pytest.raises(ValueError):
            CoordinatedAppP(sim, cdns, exploration=1.5)
        with pytest.raises(ValueError):
            CoordinatedAppP(sim, cdns, move_budget=-1)

    def test_learns_quality_from_chunks(self):
        sim, net, cdns, catalog = _world(cdn1_uplink=100.0, cdn2_uplink=1.0)
        # Full exploration so both CDNs are certainly observed.
        policy = CoordinatedAppP(
            sim, cdns, exploration=0.99, score_margin_mbps=1000.0, name="appp"
        )
        for index in range(10):
            _play(sim, net, policy, catalog, f"s{index}")
        sim.run(until=300.0)
        policy.stop()
        report = policy.quality_report()
        assert report["cdn1"]["score"] > report["cdn2"]["score"]
        assert report["cdn1"]["chunks"] > 0 and report["cdn2"]["chunks"] > 0

    def test_migrates_sessions_off_degraded_cdn(self):
        sim, net, cdns, catalog = _world()
        policy = CoordinatedAppP(
            sim, cdns, control_period_s=5.0, exploration=0.3, name="appp"
        )
        players = [
            _play(sim, net, policy, catalog, f"s{index}") for index in range(8)
        ]
        # Collapse cdn1's uplink after the fleet is spread over both.
        sim.schedule(20.0, lambda: net.set_link_capacity("cdn1->core", 0.5))
        sim.run(until=120.0)
        policy.stop()
        assert policy.migrations > 0
        assert cdns[0].active_sessions <= 1

    def test_move_budget_bounds_migration_rate(self):
        sim, net, cdns, catalog = _world()
        policy = CoordinatedAppP(
            sim, cdns, control_period_s=1000.0, move_budget=2,
            exploration=0.0, name="appp",
        )
        for index in range(6):
            _play(sim, net, policy, catalog, f"s{index}")
        # Force one control round with a huge artificial quality gap.
        policy.quality["cdn1"].observe(0.1, 5.0, alpha=1.0, now=0.0)
        policy.quality["cdn2"].observe(50.0, 0.0, alpha=1.0, now=0.0)
        on_cdn1_before = cdns[0].active_sessions
        policy._control_step()
        moved = on_cdn1_before - cdns[0].active_sessions
        assert moved <= 2

    def test_no_migration_when_gap_small(self):
        sim, net, cdns, catalog = _world()
        policy = CoordinatedAppP(
            sim, cdns, score_margin_mbps=100.0, exploration=0.0, name="appp"
        )
        for index in range(4):
            _play(sim, net, policy, catalog, f"s{index}")
        sim.run(until=120.0)
        policy.stop()
        assert policy.migrations == 0

    def test_exploration_spreads_assignments(self):
        sim, net, cdns, catalog = _world()
        policy = CoordinatedAppP(sim, cdns, exploration=0.5, name="appp")
        for index in range(30):
            _play(sim, net, policy, catalog, f"s{index}")
        assert cdns[0].active_sessions > 0
        assert cdns[1].active_sessions > 0
        policy.stop()
