"""Opt-in grants and privacy filters."""

import random

import pytest

from repro.core.privacy import blind_fields, k_suppress, laplace_noise
from repro.core.registry import AccessDeniedError, OptInRegistry


class TestRegistry:
    def test_no_grant_denied(self):
        registry = OptInRegistry()
        with pytest.raises(AccessDeniedError):
            registry.check("isp", "appp", "congestion")

    def test_wildcard_grant_covers_all_queries(self):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        assert registry.check("isp", "appp", "anything").all_fields

    def test_specific_grant_beats_wildcard(self):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        registry.grant("isp", "appp", "congestion", fields=["scope"])
        grant = registry.check("isp", "appp", "congestion")
        assert grant.fields == frozenset({"scope"})
        assert registry.check("isp", "appp", "other").all_fields

    def test_grants_are_directional(self):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        with pytest.raises(AccessDeniedError):
            registry.check("appp", "isp", "qoe")

    def test_revoke(self):
        registry = OptInRegistry()
        registry.grant("isp", "appp", "congestion")
        assert registry.revoke("isp", "appp", "congestion")
        assert not registry.revoke("isp", "appp", "congestion")
        with pytest.raises(AccessDeniedError):
            registry.check("isp", "appp", "congestion")

    def test_collaborators(self):
        registry = OptInRegistry()
        registry.grant("isp", "appp1")
        registry.grant("isp", "appp2")
        assert registry.collaborators_of("isp") == {"appp1", "appp2"}


class _Row:
    def __init__(self, count):
        self.count = count


class TestKSuppress:
    def test_small_groups_dropped(self):
        rows = [_Row(3), _Row(10), _Row(5)]
        kept = k_suppress(rows, k=5)
        assert [r.count for r in kept] == [10, 5]

    def test_k_one_keeps_everything(self):
        rows = [_Row(1)]
        assert k_suppress(rows, k=1) == rows

    def test_sessions_attribute_supported(self):
        class Aggregate:
            sessions = 2

        assert k_suppress([Aggregate()], k=3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_suppress([], k=0)

    def test_unknown_row_type(self):
        with pytest.raises(TypeError):
            k_suppress([object()], k=1)


class TestBlinding:
    def test_subset_kept(self):
        payload = {"a": 1, "b": 2, "c": 3}
        assert blind_fields(payload, ["a", "c"]) == {"a": 1, "c": 3}

    def test_star_passes_all(self):
        payload = {"a": 1}
        assert blind_fields(payload, ["*"]) == payload

    def test_unknown_fields_ignored(self):
        assert blind_fields({"a": 1}, ["z"]) == {}


class TestLaplace:
    def test_unbiased_on_average(self):
        rng = random.Random(0)
        noised = [
            laplace_noise(10.0, epsilon=1.0, sensitivity=1.0, rng=rng)
            for _ in range(5000)
        ]
        assert abs(sum(noised) / len(noised) - 10.0) < 0.15

    def test_smaller_epsilon_noisier(self):
        rng = random.Random(1)
        tight = [abs(laplace_noise(0.0, 10.0, 1.0, rng) ) for _ in range(2000)]
        rng = random.Random(1)
        loose = [abs(laplace_noise(0.0, 0.1, 1.0, rng)) for _ in range(2000)]
        assert sum(loose) / len(loose) > sum(tight) / len(tight) * 10

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            laplace_noise(1.0, epsilon=0.0, sensitivity=1.0, rng=random.Random(0))

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            laplace_noise(1.0, epsilon=1.0, sensitivity=-1.0, rng=random.Random(0))
