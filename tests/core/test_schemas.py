"""Schema serialization used by the looking-glass narrowing."""

import pytest

from repro.core.schemas import (
    CongestionSignal,
    DemandEstimate,
    PeeringDecision,
    PeeringPointInfo,
    QoeAggregate,
    ServerHintInfo,
)


class TestSerialization:
    def test_every_schema_round_trips_to_dict(self):
        samples = [
            QoeAggregate(
                window_start=0.0, window_s=10.0, cdn="x", isp="i",
                sessions=3, buffering_ratio=0.01, mean_bitrate_mbps=3.0,
                join_time_s=1.0,
            ),
            DemandEstimate(time=1.0, demand_mbps={"x": 10.0}),
            PeeringPointInfo(
                peering_node="B", cdn="x", capacity_mbps=10.0,
                load_mbps=5.0, congested=False,
            ),
            PeeringDecision(time=1.0, cdn="x", selected_peering="B"),
            CongestionSignal(time=1.0, scope="access", congested=True, severity=0.9),
            ServerHintInfo(cdn="x", server_id="s", node_id="n", load=0.5,
                           degraded=False),
        ]
        for sample in samples:
            payload = sample.to_dict()
            assert isinstance(payload, dict)
            assert set(payload) == set(type(sample).field_names())

    def test_demand_estimate_lookup(self):
        estimate = DemandEstimate(time=0.0, demand_mbps={"x": 5.0})
        assert estimate.for_cdn("x") == 5.0
        assert estimate.for_cdn("missing") == 0.0

    def test_peering_headroom(self):
        info = PeeringPointInfo(
            peering_node="B", cdn="x", capacity_mbps=10.0,
            load_mbps=4.0, congested=False,
        )
        assert info.headroom_mbps == pytest.approx(6.0)
        overloaded = PeeringPointInfo(
            peering_node="B", cdn="x", capacity_mbps=10.0,
            load_mbps=14.0, congested=True,
        )
        assert overloaded.headroom_mbps == 0.0
