"""The §4 interface-design recipe machinery."""

import pytest

from repro.core.recipe import (
    Datum,
    Knob,
    UseCase,
    derive_wide_interface,
    eona_standard_ownership,
    narrow_interface,
    utility_from_observations,
)


def _use_case():
    qoe = Datum("qoe", "appp")
    load = Datum("link_load", "isp")
    bitrate = Knob("bitrate", "appp")
    peering = Knob("peering", "isp")
    return UseCase(name="uc", knobs=(bitrate, peering), data=(qoe, load))


class TestWideInterface:
    def test_cross_ownership_pairs_become_crossings(self):
        spec = derive_wide_interface([_use_case()])
        # qoe must flow appp->isp (peering knob); link_load isp->appp.
        assert ("qoe", "isp") in spec.shared_fields
        assert ("link_load", "appp") in spec.shared_fields

    def test_same_owner_not_shared(self):
        spec = derive_wide_interface([_use_case()])
        assert ("qoe", "appp") not in spec.shared_fields
        assert ("link_load", "isp") not in spec.shared_fields

    def test_duplicates_deduplicated_per_use_case(self):
        spec = derive_wide_interface([_use_case(), _use_case()])
        crossings_for_qoe = [
            crossing for crossing in spec.crossings
            if crossing.datum.name == "qoe"
        ]
        assert len(crossings_for_qoe) == 1  # same use-case name deduped

    def test_direction_label(self):
        spec = derive_wide_interface([_use_case()])
        directions = {crossing.direction for crossing in spec.crossings}
        assert "appp->isp" in directions
        assert "isp->appp" in directions

    def test_fields_to(self):
        spec = derive_wide_interface([_use_case()])
        assert spec.fields_to("isp") == frozenset({"qoe"})


class TestNarrowing:
    def test_budget_keeps_top_utility(self):
        spec = derive_wide_interface([_use_case()])
        narrowed = narrow_interface(spec, {"qoe": 1.0, "link_load": 0.1}, budget=1)
        assert narrowed.shared_fields == frozenset({("qoe", "isp")})

    def test_budget_zero_empties(self):
        spec = derive_wide_interface([_use_case()])
        assert narrow_interface(spec, {}, budget=0).width == 0

    def test_budget_above_width_keeps_all(self):
        spec = derive_wide_interface([_use_case()])
        narrowed = narrow_interface(spec, {}, budget=99)
        assert narrowed.shared_fields == spec.shared_fields

    def test_negative_budget_rejected(self):
        spec = derive_wide_interface([_use_case()])
        with pytest.raises(ValueError):
            narrow_interface(spec, {}, budget=-1)

    def test_deterministic_tie_breaking(self):
        spec = derive_wide_interface([_use_case()])
        first = narrow_interface(spec, {}, budget=1).shared_fields
        second = narrow_interface(spec, {}, budget=1).shared_fields
        assert first == second


class TestUtilityFromObservations:
    def test_relevant_datum_scores_high(self):
        quality = [1.0, 2.0, 3.0, 4.0, 5.0]
        scores = utility_from_observations(
            {
                "relevant": [10.0, 20.0, 30.0, 40.0, 50.0],
                "inverse": [5.0, 4.0, 3.0, 2.0, 1.0],
                "constant": [7.0, 7.0, 7.0, 7.0, 7.0],
            },
            quality,
        )
        assert scores["relevant"] == pytest.approx(1.0)
        assert scores["inverse"] == pytest.approx(1.0)  # |corr|, sign-free
        assert scores["constant"] == 0.0

    def test_noise_scores_lower_than_signal(self):
        import random

        rng = random.Random(0)
        quality = [float(i) for i in range(50)]
        noise = [rng.random() for _ in range(50)]
        scores = utility_from_observations(
            {"signal": quality, "noise": noise}, quality
        )
        assert scores["signal"] > scores["noise"]

    def test_scores_feed_narrowing(self):
        spec = derive_wide_interface([_use_case()])
        scores = utility_from_observations(
            {"qoe": [1.0, 2.0, 3.0], "link_load": [1.0, 1.0, 1.0]},
            [1.0, 2.0, 3.0],
        )
        narrowed = narrow_interface(spec, scores, budget=1)
        assert narrowed.shared_fields == frozenset({("qoe", "isp")})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            utility_from_observations({"a": [1.0]}, [1.0, 2.0, 3.0])

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            utility_from_observations({"a": [1.0, 2.0]}, [1.0, 2.0])


class TestStandardOwnership:
    def test_covers_all_paper_scenarios(self):
        _, use_cases = eona_standard_ownership()
        names = {use_case.name for use_case in use_cases}
        assert names == {
            "coarse-control", "flash-crowd", "oscillation", "energy-saving",
        }

    def test_wide_interface_is_bidirectional(self):
        _, use_cases = eona_standard_ownership()
        spec = derive_wide_interface(use_cases)
        recipients = {recipient for _, recipient in spec.shared_fields}
        # QoE flows to both infrastructure parties; hints flow to appp.
        assert "isp" in recipients
        assert "appp" in recipients
        assert "cdn" in recipients

    def test_qoe_is_shared_with_every_infrastructure_owner(self):
        _, use_cases = eona_standard_ownership()
        spec = derive_wide_interface(use_cases)
        assert ("qoe", "isp") in spec.shared_fields
        assert ("qoe", "cdn") in spec.shared_fields
