"""Staleness snapshots and the looking-glass query path."""

import pytest

from repro.core.interfaces import LookingGlass, UnknownQueryError
from repro.core.registry import AccessDeniedError, OptInRegistry
from repro.core.schemas import CongestionSignal
from repro.core.staleness import StaleView


class TestStaleView:
    def test_live_view_always_fresh(self, sim):
        counter = [0]

        def fetch():
            counter[0] += 1
            return counter[0]

        view = StaleView(sim, fetch, refresh_period_s=0.0)
        assert view.get() == (1, 0.0)
        assert view.get() == (2, 0.0)

    def test_snapshot_ages_between_refreshes(self, sim):
        values = []
        view = StaleView(sim, lambda: sim.now, refresh_period_s=10.0)

        def probe():
            values.append(view.get())

        sim.schedule(4.0, probe)    # snapshot from t=0, age 4
        sim.schedule(12.0, probe)   # snapshot from t=10, age 2
        sim.run(until=15.0)
        assert values[0] == (0.0, 4.0)
        assert values[1] == (10.0, 2.0)

    def test_publish_delay(self, sim):
        view = StaleView(sim, lambda: sim.now, refresh_period_s=10.0,
                         publish_delay_s=3.0)
        seen = []
        sim.schedule(11.0, lambda: seen.append(view.value()))  # t=10 snap not yet visible
        sim.schedule(14.0, lambda: seen.append(view.value()))  # now visible
        sim.run(until=20.0)
        assert seen == [0.0, 10.0]

    def test_stop_freezes_snapshot(self, sim):
        view = StaleView(sim, lambda: sim.now, refresh_period_s=5.0)
        sim.schedule(6.0, view.stop)
        sim.run(until=30.0)
        value, age = view.get()
        assert value == 5.0
        assert age == pytest.approx(25.0)

    def test_invalid_periods(self, sim):
        with pytest.raises(ValueError):
            StaleView(sim, lambda: 1, refresh_period_s=-1.0)


class TestLookingGlass:
    def _glass(self, sim):
        registry = OptInRegistry()
        glass = LookingGlass(sim, owner="isp", registry=registry)
        glass.register(
            "congestion",
            lambda: [
                CongestionSignal(
                    time=sim.now, scope="access", congested=True, severity=0.97,
                    bottleneck_link="core->agg",
                )
            ],
        )
        return glass, registry

    def test_query_requires_grant(self, sim):
        glass, registry = self._glass(sim)
        with pytest.raises(AccessDeniedError):
            glass.query("appp", "congestion")
        assert glass.queries_denied == 1

    def test_granted_query_serializes_schema(self, sim):
        glass, registry = self._glass(sim)
        registry.grant("isp", "appp", "congestion")
        result = glass.query("appp", "congestion")
        assert result.payload[0]["scope"] == "access"
        assert result.payload[0]["congested"] is True
        assert glass.queries_served == 1

    def test_field_narrowing_applied(self, sim):
        glass, registry = self._glass(sim)
        registry.grant("isp", "appp", "congestion", fields=["scope", "congested"])
        result = glass.query("appp", "congestion")
        assert set(result.payload[0]) == {"scope", "congested"}

    def test_unknown_query(self, sim):
        glass, registry = self._glass(sim)
        with pytest.raises(UnknownQueryError):
            glass.query("appp", "nope")

    def test_snapshot_query_reports_age(self, sim):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        glass = LookingGlass(sim, "isp", registry)
        glass.register("clock", lambda: {"t": sim.now}, refresh_period_s=10.0)
        results = []
        sim.schedule(13.0, lambda: results.append(glass.query("appp", "clock")))
        sim.run(until=15.0)
        assert results[0].payload == {"t": 10.0}
        assert results[0].age_s == pytest.approx(3.0)

    def test_set_refresh_period_repaces(self, sim):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        glass = LookingGlass(sim, "isp", registry)
        glass.register("clock", lambda: sim.now, refresh_period_s=60.0)
        glass.set_refresh_period("clock", 1.0)
        results = []
        sim.schedule(5.5, lambda: results.append(glass.query("appp", "clock")))
        sim.run(until=6.0)
        assert results[0].age_s <= 1.0

    def test_live_handler_accepts_params(self, sim):
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        glass = LookingGlass(sim, "isp", registry)
        glass.register("echo", lambda tag: {"tag": tag})
        assert glass.query("appp", "echo", tag="hello").payload == {"tag": "hello"}

    def test_exported_queries_listed(self, sim):
        glass, _ = self._glass(sim)
        assert glass.exported_queries() == ["congestion"]
