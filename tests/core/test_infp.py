"""InfP control logic: demand-aware TE, I2A export, energy manager."""

import pytest

from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.infp import EnergyManager, EonaInfP, StatusQuoInfP, make_cdn_i2a
from repro.core.registry import AccessDeniedError, OptInRegistry
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.sdn.te import EgressGroup
from repro.simkernel.kernel import Simulator


def _fig5_world():
    sim = Simulator(seed=0)
    topo = Topology()
    topo.add_node("cdnX", NodeKind.SERVER, owner="cdnX")
    topo.add_node("B", NodeKind.PEERING, owner="isp")
    topo.add_node("C", NodeKind.PEERING, owner="isp")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("client", NodeKind.CLIENT, owner="isp")
    topo.add_link("cdnX", "B", 1000.0, delay_ms=1.0)
    topo.add_link("cdnX", "C", 1000.0, delay_ms=5.0)
    topo.add_link("B", "core", 10.0, delay_ms=1.0, tags=("peering",))
    topo.add_link("C", "core", 100.0, delay_ms=1.0, tags=("peering",))
    topo.add_link("core", "client", 1000.0, delay_ms=1.0, tags=("access",))
    network = FluidNetwork(sim, topo)
    group = EgressGroup(
        name="cdnX",
        remote="cdnX",
        candidates=["B", "C"],
        egress_links={"B": "B->core", "C": "C->core"},
        preferred="B",
    )
    return sim, network, group


class _FixedDemandGlass:
    """Stands in for an AppP A2I glass with a constant demand answer."""

    def __init__(self, demand):
        self.demand = demand
        self.queries = 0

    def query(self, requester, query, **params):
        from repro.core.interfaces import QueryResult

        self.queries += 1
        if query != "demand_estimate":
            raise AccessDeniedError(query)
        return QueryResult(
            query=query,
            payload={"time": 0.0, "demand_mbps": dict(self.demand)},
            age_s=0.0,
        )


class TestDemandAwareTe:
    def test_moves_to_big_peering_when_demand_exceeds_preferred(self):
        sim, network, group = _fig5_world()
        registry = OptInRegistry()
        glass = _FixedDemandGlass({"cdnX": 30.0})
        infp = EonaInfP(
            sim, network, [group], registry=registry, appp_a2i=glass,
            te_period_s=10.0, stats_period_s=2.0,
        )
        sim.run(until=25.0)
        assert infp.te.selection("cdnX") == "C"
        assert glass.queries >= 1
        infp.stop()

    def test_stays_on_preferred_when_demand_fits(self):
        sim, network, group = _fig5_world()
        registry = OptInRegistry()
        glass = _FixedDemandGlass({"cdnX": 5.0})
        infp = EonaInfP(
            sim, network, [group], registry=registry, appp_a2i=glass,
            te_period_s=10.0, stats_period_s=2.0,
        )
        sim.run(until=50.0)
        assert infp.te.selection("cdnX") == "B"
        assert infp.te.switch_count("cdnX") == 0
        infp.stop()

    def test_converges_and_stays_unlike_greedy(self):
        sim, network, group = _fig5_world()
        registry = OptInRegistry()
        glass = _FixedDemandGlass({"cdnX": 30.0})
        infp = EonaInfP(
            sim, network, [group], registry=registry, appp_a2i=glass,
            te_period_s=10.0, stats_period_s=2.0,
        )
        network.start_stream("cdnX", "client", demand_mbps=30.0, owner="cdnX")
        sim.run(until=300.0)
        assert infp.te.switch_count("cdnX") <= 1
        infp.stop()

    def test_multiple_appps_demands_summed(self):
        sim, network, group = _fig5_world()
        registry = OptInRegistry()
        glasses = [
            _FixedDemandGlass({"cdnX": 6.0}),
            _FixedDemandGlass({"cdnX": 6.0}),
        ]
        infp = EonaInfP(
            sim, network, [group], registry=registry, appp_a2i=glasses,
            te_period_s=10.0, stats_period_s=2.0,
        )
        sim.run(until=25.0)
        # 12 Mbit/s * 1.1 margin exceeds B's 10 -> must use C.
        assert infp.te.selection("cdnX") == "C"
        infp.stop()


class TestI2AExport:
    def _infp(self):
        sim, network, group = _fig5_world()
        registry = OptInRegistry()
        infp = EonaInfP(
            sim, network, [group], registry=registry,
            te_period_s=10.0, stats_period_s=2.0, i2a_refresh_s=0.0,
            access_links=["core->client"],
        )
        registry.grant("isp", "appp")
        return sim, network, infp

    def test_peering_points_reflect_topology(self):
        sim, network, infp = self._infp()
        result = infp.i2a.query("appp", "peering_points")
        by_node = {p["peering_node"]: p for p in result.payload}
        assert by_node["B"]["capacity_mbps"] == 10.0
        assert by_node["C"]["capacity_mbps"] == 100.0
        infp.stop()

    def test_peering_decisions_reflect_selection(self):
        sim, network, infp = self._infp()
        result = infp.i2a.query("appp", "peering_decisions")
        assert result.payload[0]["selected_peering"] == "B"
        infp.stop()

    def test_congestion_attribution_by_segment(self):
        sim, network, infp = self._infp()
        # Demand exceeds even the big peering, so wherever TE places the
        # group, the peering segment saturates while access has headroom.
        network.start_stream("cdnX", "client", demand_mbps=150.0, owner="cdnX")
        sim.run(until=60.0)
        signals = {s["scope"]: s for s in infp.i2a.query("appp", "congestion").payload}
        assert signals["peering"]["congested"]
        assert not signals["access"]["congested"]
        infp.stop()

    def test_denied_without_grant(self):
        sim, network, group = _fig5_world()
        registry = OptInRegistry()
        infp = EonaInfP(sim, network, [group], registry=registry)
        with pytest.raises(AccessDeniedError):
            infp.i2a.query("stranger", "congestion")
        infp.stop()

    def test_cdn_i2a_exports_hints(self):
        sim, network, _ = _fig5_world()
        registry = OptInRegistry()
        cdn = Cdn("cdnX", [CdnServer("s1", "cdnX", 10)])
        glass = make_cdn_i2a(sim, cdn, registry, refresh_period_s=0.0)
        registry.grant("cdnX", "appp")
        hints = glass.query("appp", "server_hints").payload
        assert hints[0]["server_id"] == "s1"
        load = glass.query("appp", "mean_load").payload
        assert load["mean_load"] == 0.0


class TestEnergyManager:
    def _cdn(self, n=4):
        return Cdn("cdn", [CdnServer(f"s{i}", f"n{i}", 10) for i in range(n)])

    def test_conservative_never_sheds(self, sim):
        cdn = self._cdn()
        manager = EnergyManager(sim, cdn, period_s=10.0, policy="conservative")
        sim.run(until=100.0)
        manager.stop()
        assert manager.servers_on == 4
        assert manager.server_seconds_on == pytest.approx(400.0)

    def test_schedule_follows_forecast(self, sim):
        cdn = self._cdn()
        manager = EnergyManager(
            sim, cdn, period_s=10.0, policy="schedule",
            schedule=lambda t: 0.5,
        )
        sim.run(until=50.0)
        assert manager.servers_on == 2

    def test_schedule_requires_function(self, sim):
        with pytest.raises(ValueError):
            EnergyManager(sim, self._cdn(), policy="schedule")

    def test_eona_sheds_while_qoe_healthy(self, sim):
        cdn = self._cdn()
        manager = EnergyManager(
            sim, cdn, period_s=10.0, policy="eona",
            qoe_fetch=lambda: 0.0,
            demand_fetch=lambda: 12.0,
            server_capacity_mbps=10.0,
            headroom=1.0,
        )
        sim.run(until=200.0)
        # demand 12 / capacity 10 -> 2 servers needed.
        assert manager.servers_on == 2

    def test_eona_restores_on_qoe_degradation(self, sim):
        cdn = self._cdn()
        qoe = {"value": 0.0}
        manager = EnergyManager(
            sim, cdn, period_s=10.0, policy="eona",
            qoe_fetch=lambda: qoe["value"],
            demand_fetch=lambda: 5.0,
            server_capacity_mbps=10.0,
            qoe_threshold=0.01,
        )
        sim.run(until=200.0)
        shed_to = manager.servers_on
        qoe["value"] = 0.2
        sim.run(until=250.0)
        assert manager.servers_on > shed_to

    def test_min_on_respected(self, sim):
        cdn = self._cdn(n=2)
        manager = EnergyManager(
            sim, cdn, period_s=10.0, policy="eona",
            qoe_fetch=lambda: 0.0,
            demand_fetch=lambda: 0.0,
            server_capacity_mbps=10.0,
            min_on=1,
        )
        sim.run(until=200.0)
        assert manager.servers_on == 1

    def test_power_off_evicts_sessions_from_cdn(self, sim):
        cdn = self._cdn(n=2)
        cdn.attach("a", server_id="s0")
        manager = EnergyManager(
            sim, cdn, period_s=10.0, policy="schedule",
            schedule=lambda t: 0.5, min_on=1,
        )
        sim.run(until=15.0)
        # One server off; if it was s0, the session was evicted.
        assert manager.servers_on == 1
        if not cdn.servers["s0"].powered_on:
            assert cdn.server_of("a") is None

    def test_energy_accounting_integrates(self, sim):
        cdn = self._cdn(n=2)
        manager = EnergyManager(
            sim, cdn, period_s=10.0, policy="schedule", schedule=lambda t: 0.5,
        )
        sim.run(until=100.0)
        manager.stop()
        # 2 servers for the first 10 s, then 1 server for 90 s.
        assert manager.server_seconds_on == pytest.approx(110.0)

    def test_invalid_policy(self, sim):
        with pytest.raises(ValueError):
            EnergyManager(sim, self._cdn(), policy="nonsense")


class TestStatusQuoInfP:
    def test_wires_te_with_greedy_policy(self):
        sim, network, group = _fig5_world()
        infp = StatusQuoInfP(sim, network, [group], te_period_s=10.0,
                             stats_period_s=2.0)
        network.start_stream("cdnX", "client", demand_mbps=30.0, owner="cdnX")
        sim.run(until=300.0)
        # Greedy + preference oscillates.
        assert infp.te.switch_count("cdnX") >= 4
        infp.stop()
