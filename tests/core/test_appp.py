"""AppP control logic: status quo coarseness vs. EONA's knob selection."""

import math

import pytest

from repro.cdn.content import ContentCatalog
from repro.cdn.origin import Origin
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.infp import make_cdn_i2a
from repro.core.interfaces import LookingGlass
from repro.core.registry import OptInRegistry
from repro.core.schemas import CongestionSignal
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.video.abr import RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER
from repro.video.player import AdaptivePlayer


def _world(degraded_rate=0.3):
    """Two CDNs; CDN X has one degraded and one healthy server."""
    sim = Simulator(seed=5)
    topo = Topology()
    topo.add_node("x1", NodeKind.SERVER)
    topo.add_node("x2", NodeKind.SERVER)
    topo.add_node("y1", NodeKind.SERVER)
    topo.add_node("core", NodeKind.ROUTER)
    topo.add_node("client", NodeKind.CLIENT)
    for server_node in ("x1", "x2", "y1"):
        topo.add_link(server_node, "core", 100.0)
    topo.add_link("core", "client", 50.0)
    net = FluidNetwork(sim, topo)
    cdn_x = Cdn(
        "cdnX",
        [
            CdnServer("x1", "x1", 100, degraded_rate_mbps=degraded_rate),
            CdnServer("x2", "x2", 100),
        ],
        selection="first_fit",
    )
    cdn_y = Cdn("cdnY", [CdnServer("y1", "y1", 100)])
    catalog = ContentCatalog(n_items=3, duration_s=60.0)
    return sim, net, cdn_x, cdn_y, catalog


def _play(sim, net, policy, catalog, session_id="s0"):
    player = AdaptivePlayer(
        sim,
        net,
        session_id=session_id,
        client_node="client",
        content=catalog.by_rank(0),
        ladder=DEFAULT_LADDER,
        abr=RateBasedAbr(),
        policy=policy,
    )
    player.start()
    return player


class TestStatusQuo:
    def test_switches_whole_cdn_on_degradation(self):
        sim, net, cdn_x, cdn_y, catalog = _world()
        policy = StatusQuoAppP(sim, [cdn_x, cdn_y])
        player = _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        qoe = player.qoe()
        assert qoe.cdn_switches >= 1
        assert qoe.server_switches == 0
        assert player.cdn is cdn_y

    def test_healthy_session_left_alone(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        policy = StatusQuoAppP(sim, [cdn_x, cdn_y])
        player = _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        assert player.qoe().cdn_switches == 0

    def test_telemetry_emitted_on_end(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        policy = StatusQuoAppP(sim, [cdn_x, cdn_y])
        _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        assert policy.collector.ingested == 1
        assert len(policy.finished_qoe) == 1

    def test_demand_estimate_tracks_active_sessions(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        policy = StatusQuoAppP(sim, [cdn_x, cdn_y])
        _play(sim, net, policy, catalog)
        sim.run(until=30.0)
        demand = policy.demand_estimate()
        assert demand.for_cdn("cdnX") > 0.0
        sim.run(until=600.0)
        assert policy.demand_estimate().for_cdn("cdnX") == 0.0


class TestEonaServerHints:
    def test_intra_cdn_switch_instead_of_cdn_switch(self):
        sim, net, cdn_x, cdn_y, catalog = _world()
        registry = OptInRegistry()
        cdn_i2a = {"cdnX": make_cdn_i2a(sim, cdn_x, registry)}
        registry.grant("cdnX", "appp")
        policy = EonaAppP(sim, [cdn_x, cdn_y], cdn_i2a=cdn_i2a, name="appp")
        player = _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        qoe = player.qoe()
        assert qoe.server_switches >= 1
        assert qoe.cdn_switches == 0
        assert player.cdn is cdn_x

    def test_without_grant_falls_back_to_cdn_switch(self):
        sim, net, cdn_x, cdn_y, catalog = _world()
        registry = OptInRegistry()
        cdn_i2a = {"cdnX": make_cdn_i2a(sim, cdn_x, registry)}
        # No grant issued.
        policy = EonaAppP(sim, [cdn_x, cdn_y], cdn_i2a=cdn_i2a, name="appp")
        player = _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        assert player.qoe().cdn_switches >= 1


class _FakeIspGlass(LookingGlass):
    """An ISP I2A glass reporting access congestion on demand."""

    def __init__(self, sim, registry, congested_flag):
        super().__init__(sim, "isp", registry)
        self.register(
            "congestion",
            lambda: [
                CongestionSignal(
                    time=sim.now,
                    scope="access",
                    congested=congested_flag["value"],
                    severity=0.99 if congested_flag["value"] else 0.1,
                )
            ],
        )


class TestEonaCongestionResponse:
    def test_access_congestion_caps_bitrate_not_cdn(self):
        sim, net, cdn_x, cdn_y, catalog = _world()
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        flag = {"value": True}
        glass = _FakeIspGlass(sim, registry, flag)
        policy = EonaAppP(
            sim, [cdn_x, cdn_y], isp_i2a=glass, name="appp",
            global_cap_period_s=0.0,
        )
        player = _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        qoe = player.qoe()
        assert qoe.cdn_switches == 0
        assert policy.bitrate_downshifts >= 1

    def test_cap_lifted_when_congestion_clears(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        flag = {"value": True}
        glass = _FakeIspGlass(sim, registry, flag)
        policy = EonaAppP(
            sim, [cdn_x, cdn_y], isp_i2a=glass, name="appp",
            global_cap_period_s=5.0,
        )
        player = _play(sim, net, policy, catalog)
        sim.schedule(30.0, lambda: flag.__setitem__("value", False))
        sim.run(until=600.0)
        policy.stop()
        assert math.isinf(policy.global_cap_mbps)

    def test_governor_steps_fleet_cap_down_while_congested(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        registry = OptInRegistry()
        registry.grant("isp", "appp")
        flag = {"value": True}
        glass = _FakeIspGlass(sim, registry, flag)
        policy = EonaAppP(
            sim, [cdn_x, cdn_y], isp_i2a=glass, name="appp",
            global_cap_period_s=5.0,
        )
        player = _play(sim, net, policy, catalog)
        sim.run(until=40.0)
        policy.stop()
        assert policy.global_cap_mbps <= DEFAULT_LADDER.bitrates_mbps[1]


class TestA2IExport:
    def test_qoe_aggregates_flow_through_glass(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        registry = OptInRegistry()
        policy = StatusQuoAppP(sim, [cdn_x, cdn_y], name="appp", isp="isp1")
        glass = policy.make_a2i(registry, refresh_period_s=0.0)
        registry.grant("appp", "isp")
        _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        result = glass.query("isp", "qoe_by_cdn")
        assert len(result.payload) == 1
        row = result.payload[0]
        assert row["cdn"] == "cdnX"
        assert row["sessions"] == 1

    def test_k_anonymity_suppresses_small_groups(self):
        sim, net, cdn_x, cdn_y, catalog = _world(degraded_rate=None)
        registry = OptInRegistry()
        policy = StatusQuoAppP(sim, [cdn_x, cdn_y], name="appp")
        glass = policy.make_a2i(registry, refresh_period_s=0.0, k_anonymity=5)
        registry.grant("appp", "isp")
        _play(sim, net, policy, catalog)
        sim.run(until=600.0)
        assert glass.query("isp", "qoe_by_cdn").payload == []
