"""Attribute-scoped fleet governance (MultiIspEonaAppP, E12's machinery)."""

import math

import pytest

from repro.core.appp import MultiIspEonaAppP
from repro.core.interfaces import LookingGlass
from repro.core.registry import OptInRegistry
from repro.core.schemas import CongestionSignal
from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.video.abr import RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER
from repro.video.player import AdaptivePlayer


def _flag_glass(sim, registry, owner, flag):
    glass = LookingGlass(sim, owner, registry)
    glass.register(
        "congestion",
        lambda: [
            CongestionSignal(
                time=sim.now, scope="access",
                congested=flag["value"], severity=0.99 if flag["value"] else 0.1,
            )
        ],
    )
    registry.grant(owner, "appp")
    return glass


@pytest.fixture
def world():
    sim = Simulator(seed=4)
    topo = Topology()
    topo.add_node("srv", NodeKind.SERVER)
    topo.add_node("c1", NodeKind.CLIENT)
    topo.add_node("c2", NodeKind.CLIENT)
    topo.add_link("srv", "c1", 100.0)
    topo.add_link("srv", "c2", 100.0)
    net = FluidNetwork(sim, topo)
    cdn = Cdn("cdn", [CdnServer("s", "srv", 100)])
    catalog = ContentCatalog(n_items=2, duration_s=60.0)
    registry = OptInRegistry()
    flags = {"isp1": {"value": False}, "isp2": {"value": False}}
    glasses = {
        isp: _flag_glass(sim, registry, isp, flag) for isp, flag in flags.items()
    }
    return sim, net, cdn, catalog, glasses, flags


def _policy(sim, cdn, glasses, scoped):
    return MultiIspEonaAppP(
        sim,
        [cdn],
        isp_i2a_map=glasses,
        isp_of=lambda player: "isp1" if player.client_node == "c1" else "isp2",
        scoped=scoped,
        name="appp",
        global_cap_period_s=5.0,
    )


def _player(sim, net, policy, catalog, session_id, client):
    player = AdaptivePlayer(
        sim, net, session_id, client, catalog.by_rank(0),
        DEFAULT_LADDER, RateBasedAbr(), policy,
    )
    player.start()
    return player


class TestScoping:
    def test_scoped_caps_only_congested_isp(self, world):
        sim, net, cdn, catalog, glasses, flags = world
        policy = _policy(sim, cdn, glasses, scoped=True)
        p1 = _player(sim, net, policy, catalog, "a", "c1")
        p2 = _player(sim, net, policy, catalog, "b", "c2")
        flags["isp1"]["value"] = True
        sim.run(until=30.0)
        assert math.isfinite(policy.scope_cap("isp1"))
        assert math.isinf(policy.scope_cap("isp2"))
        assert policy.rate_cap_mbps(p1) < policy.rate_cap_mbps(p2)
        policy.stop()

    def test_unscoped_caps_everyone(self, world):
        sim, net, cdn, catalog, glasses, flags = world
        policy = _policy(sim, cdn, glasses, scoped=False)
        _player(sim, net, policy, catalog, "a", "c1")
        _player(sim, net, policy, catalog, "b", "c2")
        flags["isp1"]["value"] = True
        sim.run(until=30.0)
        assert math.isfinite(policy.scope_cap("isp1"))
        assert math.isfinite(policy.scope_cap("isp2"))
        policy.stop()

    def test_cap_recovers_after_clear(self, world):
        sim, net, cdn, catalog, glasses, flags = world
        policy = _policy(sim, cdn, glasses, scoped=True)
        _player(sim, net, policy, catalog, "a", "c1")
        flags["isp1"]["value"] = True
        sim.run(until=20.0)
        flags["isp1"]["value"] = False
        sim.run(until=200.0)
        assert math.isinf(policy.scope_cap("isp1"))
        policy.stop()

    def test_no_congestion_no_caps(self, world):
        sim, net, cdn, catalog, glasses, flags = world
        policy = _policy(sim, cdn, glasses, scoped=True)
        _player(sim, net, policy, catalog, "a", "c1")
        sim.run(until=60.0)
        assert math.isinf(policy.scope_cap("isp1"))
        assert math.isinf(policy.scope_cap("isp2"))
        assert policy.bitrate_downshifts == 0
        policy.stop()

    def test_needs_at_least_one_glass(self, world):
        sim, net, cdn, catalog, glasses, flags = world
        with pytest.raises(ValueError):
            MultiIspEonaAppP(
                sim, [cdn], isp_i2a_map={}, isp_of=lambda p: "x", name="appp"
            )
