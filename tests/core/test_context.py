"""SimContext assembly and context-accepting constructors."""

import pytest

from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.appp import StatusQuoAppP
from repro.core.context import SimContext, build_context, resolve_sim_network
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.network.allocator import EngineConfig
from repro.network.topology import NodeKind, Topology


def _topo():
    topo = Topology("ctx")
    topo.add_node("cdn1", NodeKind.SERVER, owner="cdn1")
    topo.add_node("client", NodeKind.CLIENT, owner="isp")
    topo.add_link("cdn1", "client", 10.0, delay_ms=1, owner="isp")
    return topo


class TestBuildContext:
    def test_wires_the_quartet_together(self):
        ctx = build_context(topology=_topo(), seed=3)
        assert ctx.network.sim is ctx.sim
        assert ctx.network.topology is ctx.topology
        assert ctx.rng is ctx.sim.rng
        assert ctx.now == 0.0

    def test_engine_config_reaches_the_network(self):
        config = EngineConfig(max_rate_mbps=7.0, incremental=False)
        ctx = build_context(topology=_topo(), engine_config=config)
        assert ctx.network.engine.config is config
        assert ctx.network.max_rate_mbps == 7.0

    def test_fresh_topology_when_omitted(self):
        ctx = build_context(name="empty")
        assert ctx.topology.name == "empty"

    def test_run_and_counters_passthrough(self):
        ctx = build_context(topology=_topo())
        ctx.network.start_transfer("cdn1", "client", size_mbit=5.0)
        ctx.run(until=10.0)
        counters = ctx.allocation_counters()
        assert counters["solve_calls"] >= 1


class TestCdnRegistration:
    def test_cdn_self_registers(self):
        ctx = build_context(topology=_topo())
        cdn = Cdn("cdn1", [CdnServer("cdn1.s1", "cdn1", capacity_sessions=100)], ctx=ctx)
        assert ctx.cdns == [cdn]

    def test_registration_is_idempotent(self):
        ctx = build_context(topology=_topo())
        cdn = Cdn("cdn1", [CdnServer("cdn1.s1", "cdn1", capacity_sessions=100)], ctx=ctx)
        ctx.register_cdn(cdn)
        assert ctx.cdns == [cdn]


class TestContextConstructors:
    def test_appp_takes_cdns_from_context(self):
        ctx = build_context(topology=_topo())
        cdn = Cdn("cdn1", [CdnServer("cdn1.s1", "cdn1", capacity_sessions=100)], ctx=ctx)
        policy = StatusQuoAppP(ctx, name="appp")
        assert policy.cdns == [cdn]
        assert policy.sim is ctx.sim

    def test_infp_takes_network_from_context(self):
        ctx = build_context(topology=_topo())
        infp = StatusQuoInfP(ctx, stats_period_s=5.0)
        assert infp.network is ctx.network
        infp.stop()

    def test_eona_infp_takes_registry_from_context(self):
        ctx = build_context(topology=_topo())
        infp = EonaInfP(ctx, stats_period_s=5.0)
        assert infp.registry is ctx.registry
        infp.stop()

    def test_resolve_requires_network_without_context(self):
        ctx = build_context(topology=_topo())
        sim, network = resolve_sim_network(ctx, None)
        assert (sim, network) == (ctx.sim, ctx.network)
        with pytest.raises(TypeError):
            resolve_sim_network(ctx.sim, None)
