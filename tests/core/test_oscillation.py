"""Oscillation detection and the adaptive damper."""

import pytest

from repro.core.damping import ExponentialBackoff
from repro.core.oscillation import AdaptiveDamper, OscillationDetector


class TestDetector:
    def test_monotone_progress_is_not_oscillation(self):
        detector = OscillationDetector()
        for value in ("A", "B", "C", "D"):
            detector.record("k", value)
        assert not detector.is_oscillating("k")
        assert detector.flip_count("k") == 0

    def test_aba_flapping_detected(self):
        detector = OscillationDetector(flip_threshold=2)
        for value in ("A", "B", "A", "B"):
            detector.record("k", value)
        assert detector.is_oscillating("k")

    def test_repeated_same_value_ignored(self):
        detector = OscillationDetector()
        for value in ("A", "A", "A"):
            detector.record("k", value)
        assert detector.flip_count("k") == 0

    def test_window_forgets_old_flips(self):
        detector = OscillationDetector(window=3, flip_threshold=2)
        for value in ("A", "B", "A"):  # one flip
            detector.record("k", value)
        for value in ("C", "D", "E"):  # pushes the flip out of the window
            detector.record("k", value)
        assert not detector.is_oscillating("k")

    def test_knobs_independent(self):
        detector = OscillationDetector(flip_threshold=1)
        detector.record("a", "X")
        detector.record("a", "Y")
        detector.record("a", "X")
        assert detector.is_oscillating("a")
        assert not detector.is_oscillating("b")

    def test_reset(self):
        detector = OscillationDetector(flip_threshold=1)
        for value in ("A", "B", "A"):
            detector.record("k", value)
        detector.reset("k")
        assert not detector.is_oscillating("k")

    def test_validation(self):
        with pytest.raises(ValueError):
            OscillationDetector(window=1)
        with pytest.raises(ValueError):
            OscillationDetector(flip_threshold=0)


class TestAdaptiveDamper:
    def test_calm_knob_unrestricted(self, sim):
        damper = AdaptiveDamper(sim)
        for value in ("A", "B", "C"):
            assert damper.allow("k", value)
            damper.record("k", value)
        assert damper.suppressed == 0

    def test_backoff_engages_on_flapping(self, sim):
        damper = AdaptiveDamper(
            sim,
            detector=OscillationDetector(flip_threshold=2),
            backoff=ExponentialBackoff(sim, base_s=100.0),
        )
        for value in ("A", "B", "A", "B"):
            damper.record("k", value)
        # Oscillating and inside the backoff window: change suppressed.
        assert not damper.allow("k", "A")
        assert damper.suppressed == 1

    def test_backoff_expiry_allows_again(self, sim):
        damper = AdaptiveDamper(
            sim,
            detector=OscillationDetector(flip_threshold=2),
            backoff=ExponentialBackoff(sim, base_s=10.0, reset_after_s=10_000.0),
        )
        for value in ("A", "B", "A", "B"):
            damper.record("k", value)
        outcomes = []
        sim.schedule(5.0, lambda: outcomes.append(damper.allow("k", "A")))
        sim.schedule(11.0, lambda: outcomes.append(damper.allow("k", "A")))
        sim.run(until=12.0)
        assert outcomes == [False, True]


class TestTeIntegration:
    def test_damped_te_flaps_less(self):
        """The Figure 5 greedy oscillator with/without adaptive damping."""
        from repro.core.infp import StatusQuoInfP
        from repro.scenarios import build_scenario

        def run(with_damper):
            scenario = build_scenario("oscillation", seed=2, params={"n_clients": 4})
            sim = scenario.sim
            infp = StatusQuoInfP(
                sim, scenario.network, scenario.groups,
                te_period_s=20.0, stats_period_s=5.0,
            )
            if with_damper:
                infp.te.damper = AdaptiveDamper(
                    sim,
                    detector=OscillationDetector(flip_threshold=2),
                    backoff=ExponentialBackoff(
                        sim, base_s=120.0, reset_after_s=10_000.0
                    ),
                )
            # A persistent stream that congests peering B.
            scenario.network.start_stream(
                "cdnX", "client0", demand_mbps=100.0, owner="cdnX"
            )
            sim.run(until=900.0)
            infp.stop()
            return infp.te.switch_count("cdnX")

        undamped = run(with_damper=False)
        damped = run(with_damper=True)
        assert undamped >= 8
        assert damped < undamped / 2
