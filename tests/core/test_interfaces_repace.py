"""Re-pacing snapshot views mid-run, and the queries_failed counter."""

import pytest

from repro.core.interfaces import (
    GlassUnavailableError,
    LookingGlass,
    UnknownQueryError,
)
from repro.core.registry import OptInRegistry
from repro.core.staleness import StaleView


def _glass(sim, **register_kwargs):
    registry = OptInRegistry()
    registry.grant("isp", "appp")
    glass = LookingGlass(sim, "isp", registry)
    glass.register("clock", lambda: {"t": sim.now}, **register_kwargs)
    return glass


class TestRepacingUnderActiveSim:
    def test_stop_halts_refresh_while_sim_keeps_running(self, sim):
        view = StaleView(sim, lambda: sim.now, refresh_period_s=5.0)
        sim.run(until=12.0)           # refreshed at 5 and 10
        assert view.get() == (10.0, 2.0)
        view.stop()
        sim.run(until=40.0)           # process stopped: snapshot frozen
        value, age = view.get()
        assert value == 10.0
        assert age == pytest.approx(30.0)

    def test_stop_is_idempotent(self, sim):
        view = StaleView(sim, lambda: sim.now, refresh_period_s=5.0)
        sim.run(until=7.0)
        view.stop()
        view.stop()
        sim.run(until=20.0)
        assert view.value() == 5.0

    def test_set_refresh_period_repaces_mid_run(self, sim):
        glass = _glass(sim, refresh_period_s=60.0)
        ages = []
        # Re-pace at t=30 while the old (60s) process is mid-cycle; the
        # next queries must see the fast cadence, not the old one.
        sim.schedule_at(30.0, glass.set_refresh_period, "clock", 2.0)
        for time in (29.0, 35.0, 41.0):
            sim.schedule_at(
                time, lambda: ages.append(glass.query("appp", "clock").age_s)
            )
        sim.run(until=50.0)
        assert ages[0] == pytest.approx(29.0)   # old pace: snapshot from t=0
        assert ages[1] <= 2.0                   # new pace took over
        assert ages[2] <= 2.0

    def test_set_refresh_period_zero_goes_live(self, sim):
        glass = _glass(sim, refresh_period_s=60.0)
        results = []
        sim.schedule_at(10.0, glass.set_refresh_period, "clock", 0.0)
        sim.schedule_at(
            20.0, lambda: results.append(glass.query("appp", "clock"))
        )
        sim.run(until=30.0)
        assert results[0].payload == {"t": 20.0}
        assert results[0].age_s == 0.0

    def test_set_refresh_period_unknown_query(self, sim):
        glass = _glass(sim)
        with pytest.raises(UnknownQueryError):
            glass.set_refresh_period("nope", 5.0)


class TestQueriesFailedCounter:
    def test_unknown_query_counts(self, sim):
        glass = _glass(sim)
        with pytest.raises(UnknownQueryError):
            glass.query("appp", "nope")
        assert glass.queries_failed == 1
        assert glass.queries_served == 0

    def test_handler_exception_counts(self, sim):
        glass = _glass(sim)

        def broken():
            raise RuntimeError("backend died")

        glass.register("broken", broken)
        with pytest.raises(RuntimeError):
            glass.query("appp", "broken")
        assert glass.queries_failed == 1

    def test_outage_and_drop_count(self, sim):
        glass = _glass(sim)
        glass.set_available(False)
        with pytest.raises(GlassUnavailableError):
            glass.query("appp", "clock")
        glass.set_available(True)
        glass.set_fault_mode("drop")
        with pytest.raises(GlassUnavailableError):
            glass.query("appp", "clock")
        assert glass.queries_failed == 2

    def test_denials_counted_separately(self, sim):
        glass = _glass(sim)
        from repro.core.registry import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            glass.query("stranger", "clock")
        assert glass.queries_denied == 1
        assert glass.queries_failed == 0

    def test_successful_query_does_not_count(self, sim):
        glass = _glass(sim)
        glass.query("appp", "clock")
        assert glass.queries_failed == 0
        assert glass.queries_served == 1

    def test_invalid_fault_mode_rejected(self, sim):
        glass = _glass(sim)
        with pytest.raises(ValueError):
            glass.set_fault_mode("explode")
        with pytest.raises(ValueError):
            glass.set_fault_mode("delay", delay_s=-1.0)
