"""Hysteresis and exponential backoff gates."""

import pytest

from repro.core.damping import ExponentialBackoff, HysteresisGate


class TestHysteresis:
    def test_requires_improvement_margin(self, sim):
        gate = HysteresisGate(sim, min_dwell_s=0.0, improvement_margin=0.1)
        assert not gate.allow("k", current_score=10.0, candidate_score=10.5)
        assert gate.allow("k", current_score=10.0, candidate_score=11.5)

    def test_margin_with_negative_scores(self, sim):
        gate = HysteresisGate(sim, min_dwell_s=0.0, improvement_margin=0.1)
        # current -10; required improvement above -9.
        assert not gate.allow("k", current_score=-10.0, candidate_score=-9.5)
        assert gate.allow("k", current_score=-10.0, candidate_score=-8.0)

    def test_dwell_blocks_rapid_changes(self, sim):
        gate = HysteresisGate(sim, min_dwell_s=30.0, improvement_margin=0.0)
        assert gate.allow("k", 1.0, 2.0)
        gate.record_change("k")
        blocked = []
        sim.schedule(10.0, lambda: blocked.append(gate.allow("k", 1.0, 2.0)))
        sim.schedule(31.0, lambda: blocked.append(gate.allow("k", 1.0, 2.0)))
        sim.run(until=40.0)
        assert blocked == [False, True]

    def test_knobs_independent(self, sim):
        gate = HysteresisGate(sim, min_dwell_s=30.0, improvement_margin=0.0)
        gate.record_change("a")
        assert gate.allow("b", 1.0, 2.0)

    def test_dwell_remaining(self, sim):
        gate = HysteresisGate(sim, min_dwell_s=30.0)
        assert gate.dwell_remaining("k") == 0.0
        gate.record_change("k")
        assert gate.dwell_remaining("k") == pytest.approx(30.0)

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            HysteresisGate(sim, min_dwell_s=-1.0)


class TestBackoff:
    def test_first_change_free(self, sim):
        backoff = ExponentialBackoff(sim, base_s=10.0)
        assert backoff.ready("k")

    def test_wait_doubles(self, sim):
        backoff = ExponentialBackoff(sim, base_s=10.0, factor=2.0, max_s=100.0,
                                     reset_after_s=1000.0)
        backoff.record_change("k")
        assert backoff.wait_remaining("k") == pytest.approx(10.0)
        results = []

        def change_again():
            results.append(backoff.ready("k"))
            backoff.record_change("k")
            results.append(backoff.wait_remaining("k"))

        sim.schedule(11.0, change_again)
        sim.run(until=12.0)
        assert results[0] is True
        assert results[1] == pytest.approx(20.0)

    def test_not_ready_inside_wait(self, sim):
        backoff = ExponentialBackoff(sim, base_s=10.0)
        backoff.record_change("k")
        checked = []
        sim.schedule(5.0, lambda: checked.append(backoff.ready("k")))
        sim.run(until=6.0)
        assert checked == [False]

    def test_ceiling(self, sim):
        backoff = ExponentialBackoff(sim, base_s=10.0, factor=10.0, max_s=50.0,
                                     reset_after_s=10_000.0)
        for _ in range(5):
            backoff.record_change("k")
        assert backoff.wait_remaining("k") <= 50.0

    def test_reset_after_quiet_period(self, sim):
        backoff = ExponentialBackoff(sim, base_s=10.0, factor=2.0,
                                     reset_after_s=100.0, max_s=500.0)
        backoff.record_change("k")
        results = []

        def later():
            backoff.record_change("k")  # after the quiet period: base again
            results.append(backoff.wait_remaining("k"))

        sim.schedule(200.0, later)
        sim.run(until=201.0)
        assert results == [pytest.approx(10.0)]

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            ExponentialBackoff(sim, base_s=0.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(sim, base_s=10.0, max_s=5.0)
