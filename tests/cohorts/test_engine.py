"""The fluid-cohort engine: lifecycle, beacons, and network coupling."""

import numpy
import pytest

from repro.cohorts.engine import CohortEngine
from repro.cohorts.specs import WEB, CohortSpec
from repro.core.context import build_context
from repro.network.topology import NodeKind, Topology
from repro.telemetry.aggregate import GroupByAggregator


def _context(seed=0, capacity=1000.0):
    topology = Topology("cohort-test")
    topology.add_node("edge", NodeKind.SERVER)
    topology.add_node("c0", NodeKind.CLIENT)
    topology.add_link("edge", "c0", capacity_mbps=capacity)
    return build_context(topology=topology, seed=seed)


def _spec(**kwargs):
    defaults = dict(
        node="c0",
        cdn="cdnX",
        tier="hd",
        device="tv",
        src_node="edge",
        content_duration_s=24.0,
        device_cap_mbps=6.0,
    )
    defaults.update(kwargs)
    return CohortSpec(**defaults)


def _run(ctx, engine, horizon):
    engine.start()
    ctx.sim.run(until=horizon)


class TestValidation:
    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError, match="at least one cohort"):
            CohortEngine(_context(), [])

    def test_non_positive_dt_rejected(self):
        with pytest.raises(ValueError, match="dt"):
            CohortEngine(_context(), [_spec()], dt_s=0.0)

    def test_double_start_rejected(self):
        ctx = _context()
        engine = CohortEngine(ctx, [_spec()])
        engine.start()
        with pytest.raises(RuntimeError, match="already started"):
            engine.start()

    def test_prefill_after_start_rejected(self):
        ctx = _context()
        engine = CohortEngine(ctx, [_spec()])
        engine.start()
        with pytest.raises(RuntimeError, match="prefill"):
            engine.prefill([1.0])

    def test_prefill_length_must_match(self):
        engine = CohortEngine(_context(), [_spec()])
        with pytest.raises(ValueError, match="one count per cohort"):
            engine.prefill([1.0, 2.0])


class TestStateScaling:
    def test_state_independent_of_session_count(self):
        small = CohortEngine(_context(), [_spec()])
        small.prefill([1_000.0])
        large = CohortEngine(_context(), [_spec()])
        large.prefill([1_000_000.0])
        assert small.generations == large.generations
        assert small.state_bytes() == large.state_bytes()
        assert large.concurrent_sessions == pytest.approx(1_000_000.0)

    def test_generations_scale_with_content_length(self):
        engine = CohortEngine(_context(), [_spec(content_duration_s=24.0)], dt_s=1.0)
        engine.prefill([100.0])
        assert engine.generations == 24
        assert engine.cohort_counts()[0] == pytest.approx(100.0)


class TestVideoLifecycle:
    def test_prefilled_population_completes_and_beacons(self):
        ctx = _context()
        beacons = []
        engine = CohortEngine(
            ctx,
            [_spec()],
            beacon_sink=lambda record, sessions: beacons.append((record, sessions)),
            until=60.0,
        )
        engine.prefill([120.0])
        _run(ctx, engine, 90.0)
        assert engine.counters["cohort.completed"] == 120
        assert engine.counters["cohort.abandoned"] == 0
        assert engine.concurrent_sessions == 0.0
        assert sum(sessions for _, sessions in beacons) == pytest.approx(120.0)
        record, _ = beacons[0]
        assert record.attr("cdn") == "cdnX"
        assert record.attr("tier") == "hd"
        assert record.attr("device") == "tv"
        assert 0.0 < record.metrics["engagement"] <= 1.0
        assert record.metrics["mean_bitrate_mbps"] > 0.0
        assert record.metrics["abandoned"] == 0.0

    def test_uncontended_cohort_reaches_top_rung(self):
        ctx = _context(capacity=10_000.0)
        beacons = []
        engine = CohortEngine(
            ctx,
            [_spec()],
            beacon_sink=lambda record, sessions: beacons.append(record),
            until=60.0,
        )
        engine.prefill([50.0])
        _run(ctx, engine, 90.0)
        # Plenty of capacity: late-retiring generations climb well above
        # the prefill rung (their means still include the low-rung start).
        assert max(r.metrics["mean_bitrate_mbps"] for r in beacons) > 2.5

    def test_starved_cohort_abandons(self):
        ctx = _context(capacity=1.0)
        beacons = []
        engine = CohortEngine(
            ctx,
            [_spec(content_duration_s=120.0)],
            beacon_sink=lambda record, sessions: beacons.append(record),
            until=80.0,
            abandon_rebuffer_s=10.0,
        )
        engine.prefill([200.0])
        _run(ctx, engine, 100.0)
        assert engine.counters["cohort.abandoned"] > 0
        assert any(r.metrics["abandoned"] == 1.0 for r in beacons)

    def test_arrivals_join_and_complete(self):
        ctx = _context()
        engine = CohortEngine(
            ctx, [_spec(arrival_rate_per_s=4.0)], until=120.0
        )
        _run(ctx, engine, 150.0)
        assert engine.counters["cohort.arrivals"] > 0
        assert engine.counters["cohort.completed"] > 0
        beaconed = (
            engine.counters["cohort.completed"]
            + engine.counters["cohort.abandoned"]
        )
        assert beaconed + engine.concurrent_sessions == pytest.approx(
            engine.counters["cohort.arrivals"]
        )


class TestWebLifecycle:
    def test_page_loads_emit_satisfaction(self):
        ctx = _context()
        beacons = []
        engine = CohortEngine(
            ctx,
            [_spec(kind=WEB, arrival_rate_per_s=5.0, page_mbit=8.0)],
            beacon_sink=lambda record, sessions: beacons.append(record),
            until=30.0,
        )
        _run(ctx, engine, 60.0)
        assert beacons, "web generations should finish their page loads"
        record = beacons[0]
        assert record.attr("app") == "web"
        assert record.attr("client") == "c0"
        assert record.metrics["total_mbit"] >= 8.0
        assert 0.0 < record.metrics["satisfaction"] <= 1.0
        assert record.metrics["plt_s"] > 0.0


class TestDeterminismAndIsolation:
    def test_same_seed_same_trajectory(self):
        counters = []
        for _ in range(2):
            ctx = _context(seed=7)
            engine = CohortEngine(
                ctx, [_spec(arrival_rate_per_s=3.0)], until=40.0
            )
            _run(ctx, engine, 60.0)
            counters.append(dict(engine.counters))
        assert counters[0] == counters[1]

    def test_different_seeds_differ(self):
        arrivals = []
        for seed in (0, 1):
            ctx = _context(seed=seed)
            engine = CohortEngine(
                ctx, [_spec(arrival_rate_per_s=3.0)], until=40.0
            )
            _run(ctx, engine, 60.0)
            arrivals.append(engine.counters["cohort.arrivals"])
        assert arrivals[0] != arrivals[1]

    def test_numpy_global_state_untouched(self):
        before = numpy.random.get_state()[1].copy()
        ctx = _context()
        engine = CohortEngine(ctx, [_spec(arrival_rate_per_s=3.0)], until=20.0)
        engine.prefill([10.0])
        _run(ctx, engine, 30.0)
        engine.sample_individuals(3)
        numpy.testing.assert_array_equal(before, numpy.random.get_state()[1])


class TestSampling:
    def test_sample_individuals_materializes_snapshots(self):
        engine = CohortEngine(_context(), [_spec()])
        engine.prefill([100.0])
        records = engine.sample_individuals(5)
        assert len(records) == 5
        assert engine.counters["cohort.individuals_sampled"] == 5
        for record in records:
            assert record.attr("cdn") == "cdnX"
            assert "engagement" in record.metrics

    def test_sample_from_empty_engine_is_empty(self):
        engine = CohortEngine(_context(), [_spec()])
        assert engine.sample_individuals(5) == []
        assert engine.sample_individuals(0) == []


class TestTelemetryRouting:
    def test_attach_aggregator_routes_weighted_beacons(self):
        ctx = _context()
        engine = CohortEngine(ctx, [_spec()], until=60.0)
        aggregator = GroupByAggregator(
            window_s=1e9,
            group_keys=("cdn", "tier"),
            metrics=("engagement", "mean_bitrate_mbps"),
        )
        engine.attach_aggregator(aggregator)
        engine.prefill([120.0])
        _run(ctx, engine, 90.0)
        rows = aggregator.flush()
        assert len(rows) == 1
        row = rows[0]
        assert row.group == ("cdnX", "hd")
        # Weighted count equals the head count, not the beacon count.
        assert row.count == pytest.approx(120.0)
        assert aggregator.records_processed == engine.counters["cohort.beacons"]
        assert 0.0 < row.mean("engagement") <= 1.0

    def test_attach_appp_routes_into_cohort_ingest(self):
        class FakeAppP:
            def __init__(self):
                self.batches = []

            def ingest_cohort_beacons(self, beacons):
                self.batches.append(list(beacons))

        ctx = _context()
        engine = CohortEngine(ctx, [_spec()], until=60.0)
        appp = FakeAppP()
        engine.attach_appp(appp)
        engine.prefill([30.0])
        _run(ctx, engine, 90.0)
        assert appp.batches
        total = sum(
            sessions for batch in appp.batches for _, sessions in batch
        )
        assert total == pytest.approx(30.0)


class TestNetworkCoupling:
    def test_cohort_weight_splits_against_individual_flow(self):
        # A cohort of 3 against one weight-1 flow on a 4 Mbps link:
        # weighted max-min gives the cohort 3 Mbps (1 Mbps per session).
        ctx = _context(capacity=4.0)
        spec = _spec(burst_demand_mbps=24.0, content_duration_s=1000.0)
        engine = CohortEngine(ctx, [spec], until=10.0)
        engine.prefill([3.0])
        competitor = ctx.network.start_stream(
            "edge", "c0", demand_mbps=100.0, owner="solo"
        )
        engine.start()
        ctx.sim.run(until=5.0)
        # (prefill spreads fractional rows over playback positions, so a
        # sliver of the cohort retires each tick — hence the 2% slack.)
        assert competitor.rate_mbps == pytest.approx(1.0, rel=0.02)
        cohort_flow = next(
            stream for stream in engine._streams if stream is not None
        )
        assert cohort_flow.rate_mbps == pytest.approx(3.0, rel=0.02)
        ctx.network.abort(competitor)

    def test_streams_shut_down_after_until(self):
        ctx = _context()
        engine = CohortEngine(ctx, [_spec()], until=30.0)
        engine.prefill([10.0])
        _run(ctx, engine, 60.0)
        assert all(stream is None for stream in engine._streams)
