"""Scalar vs vectorized step equivalence: the cohort engine's contract.

Every vectorized twin in :mod:`repro.cohorts.vecsteps` must agree
element-wise with its scalar source of truth on arbitrary inputs; these
properties are what lets the equivalence experiment (e7-cohort) trust
the fluid path.
"""

import math

import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.cohorts.vecsteps import (
    buffer_advance_vec,
    engagement_vec,
    highest_at_most_vec,
    rung_for_throughput,
)
from repro.video.abr import AbrContext, RateBasedAbr
from repro.video.buffer import buffer_advance_step
from repro.video.ladder import DEFAULT_LADDER, BitrateLadder
from repro.video.qoe import engagement_terms
from repro.web.qoe import satisfaction_from_plt, satisfaction_from_plt_array

# Scalar math.* and numpy ufuncs may differ by an ulp on transcendental
# functions; everything else is exact double arithmetic.
ULP_TOL = 1e-12

LADDERS = (
    DEFAULT_LADDER,
    BitrateLadder(bitrates_mbps=(1.0,)),
    BitrateLadder(bitrates_mbps=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)),
)

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestBufferAdvance:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=60.0),
                st.floats(min_value=-2.0, max_value=10.0),
                st.booleans(),
                st.booleans(),
            ),
            min_size=1,
            max_size=32,
        )
    )
    def test_elementwise_agreement(self, rows):
        level = numpy.array([r[0] for r in rows])
        elapsed = numpy.array([r[1] for r in rows])
        started = numpy.array([r[2] for r in rows])
        stalled = numpy.array([r[3] for r in rows])
        new_level, played, waiting, now_stalled = buffer_advance_vec(
            level, elapsed, started, stalled
        )
        for i, row in enumerate(rows):
            s_level, s_played, s_waiting, s_stalled = buffer_advance_step(*row)
            assert new_level[i] == pytest.approx(s_level, abs=0.0)
            assert played[i] == pytest.approx(s_played, abs=0.0)
            assert waiting[i] == pytest.approx(s_waiting, abs=0.0)
            assert bool(now_stalled[i]) == s_stalled

    def test_conservation(self):
        # played + waiting == elapsed for every ticking row.
        level = numpy.array([0.0, 1.0, 5.0])
        elapsed = numpy.array([2.0, 2.0, 2.0])
        started = numpy.array([True, True, True])
        stalled = numpy.array([False, False, False])
        _, played, waiting, _ = buffer_advance_vec(level, elapsed, started, stalled)
        numpy.testing.assert_allclose(played + waiting, elapsed)


class TestEngagement:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-0.5, max_value=1.5),
                st.floats(min_value=-1.0, max_value=12.0),
                st.floats(min_value=-5.0, max_value=120.0),
            ),
            min_size=1,
            max_size=32,
        ),
        st.sampled_from([6.0, 3.5, 0.0, -1.0]),
    )
    def test_elementwise_agreement(self, rows, max_bitrate):
        ratio = numpy.array([r[0] for r in rows])
        bitrate = numpy.array([r[1] for r in rows])
        join = numpy.array([r[2] for r in rows])
        scores = engagement_vec(ratio, bitrate, join, max_bitrate_mbps=max_bitrate)
        for i, row in enumerate(rows):
            scalar = engagement_terms(*row, max_bitrate_mbps=max_bitrate)
            assert scores[i] == pytest.approx(scalar, abs=ULP_TOL)

    def test_scalar_input_gives_scalar_shape(self):
        score = engagement_vec(0.0, 6.0, 0.0)
        assert float(score) == pytest.approx(1.0)


class TestLadderLookup:
    @settings(max_examples=200, deadline=None)
    @given(
        st.sampled_from(LADDERS),
        st.lists(
            st.floats(min_value=-2.0, max_value=20.0), min_size=1, max_size=32
        ),
    )
    def test_highest_at_most_agrees(self, ladder, caps):
        chosen = highest_at_most_vec(ladder, numpy.array(caps))
        for i, cap in enumerate(caps):
            assert chosen[i] == ladder.highest_at_most(cap)

    def test_exact_rung_is_eligible(self):
        for rung in DEFAULT_LADDER.bitrates_mbps:
            assert float(highest_at_most_vec(DEFAULT_LADDER, rung)) == rung


class TestRungForThroughput:
    @settings(max_examples=200, deadline=None)
    @given(
        st.sampled_from(LADDERS),
        st.lists(
            st.tuples(
                st.floats(min_value=-1.0, max_value=30.0),
                st.one_of(
                    st.just(math.inf),
                    st.floats(min_value=0.1, max_value=20.0),
                ),
            ),
            min_size=1,
            max_size=32,
        ),
        st.sampled_from([0.85, 0.5, 1.0]),
    )
    def test_matches_rate_based_abr(self, ladder, rows, safety):
        abr = RateBasedAbr(safety=safety)
        estimate = numpy.array([r[0] for r in rows])
        cap = numpy.array([r[1] for r in rows])
        chosen = rung_for_throughput(ladder, estimate, cap, safety)
        for i, (est, cap_i) in enumerate(rows):
            # A single positive sample makes the harmonic-mean estimate
            # exactly that sample; non-positive samples are filtered so
            # the scalar falls back to the lowest rung, like the vector.
            ctx = AbrContext(
                ladder=ladder,
                buffer_level_s=0.0,
                throughput_samples_mbps=[est],
                rate_cap_mbps=cap_i,
            )
            assert chosen[i] == abr.choose(ctx)

    def test_results_are_ladder_rungs(self):
        chosen = rung_for_throughput(
            DEFAULT_LADDER, numpy.linspace(-1.0, 30.0, 64)
        )
        assert set(numpy.unique(chosen)) <= set(DEFAULT_LADDER.bitrates_mbps)


class TestWebSatisfaction:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=32
        )
    )
    def test_elementwise_agreement(self, plts):
        values = satisfaction_from_plt_array(numpy.array(plts))
        for i, plt in enumerate(plts):
            assert values[i] == pytest.approx(
                satisfaction_from_plt(plt), abs=ULP_TOL
            )

    def test_negative_plt_rejected(self):
        with pytest.raises(ValueError):
            satisfaction_from_plt_array([-1.0])
