"""Flow table match semantics: specificity, priority, cookies."""

from repro.sdn.flowtable import FlowTable, TableEntry
from repro.sdn.messages import Match


def _entry(match, next_hop, priority=0, cookie=""):
    return TableEntry(match=match, next_hop=next_hop, priority=priority, cookie=cookie)


class TestLookup:
    def test_exact_beats_wildcard(self):
        table = FlowTable()
        table.install(_entry(Match(group="g"), "wide"))
        table.install(_entry(Match(src="s", dst="d", group="g"), "narrow"))
        entry = table.lookup("s", "d", "g")
        assert entry.next_hop == "narrow"

    def test_priority_breaks_specificity_ties(self):
        table = FlowTable()
        table.install(_entry(Match(group="g"), "low", priority=1))
        table.install(_entry(Match(src="s"), "high", priority=9))
        assert table.lookup("s", "d", "g").next_hop == "high"

    def test_no_match_returns_none(self):
        table = FlowTable()
        table.install(_entry(Match(group="other"), "x"))
        assert table.lookup("s", "d", "g") is None

    def test_full_wildcard_matches_everything(self):
        table = FlowTable()
        table.install(_entry(Match(), "default"))
        assert table.lookup("anything", "anywhere", "any").next_hop == "default"

    def test_hit_count_increments(self):
        table = FlowTable()
        table.install(_entry(Match(), "d"))
        table.lookup("a", "b", "c")
        table.lookup("a", "b", "c")
        assert table.entries()[0].hit_count == 2


class TestMutation:
    def test_install_replaces_same_match(self):
        table = FlowTable()
        table.install(_entry(Match(group="g"), "old"))
        table.install(_entry(Match(group="g"), "new"))
        assert len(table) == 1
        assert table.lookup("s", "d", "g").next_hop == "new"

    def test_remove_by_match(self):
        table = FlowTable()
        table.install(_entry(Match(group="g"), "x"))
        assert table.remove(Match(group="g"))
        assert not table.remove(Match(group="g"))
        assert len(table) == 0

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.install(_entry(Match(group="a"), "x", cookie="te:1"))
        table.install(_entry(Match(group="b"), "y", cookie="te:1"))
        table.install(_entry(Match(group="c"), "z", cookie="other"))
        assert table.remove_by_cookie("te:1") == 2
        assert len(table) == 1


class TestMatch:
    def test_specificity(self):
        assert Match().specificity == 0
        assert Match(src="s").specificity == 1
        assert Match(src="s", dst="d", group="g").specificity == 3

    def test_matches_partial(self):
        match = Match(dst="d")
        assert match.matches("anything", "d", "g")
        assert not match.matches("anything", "other", "g")
