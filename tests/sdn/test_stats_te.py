"""Stats service polling and TE app decisions (greedy oscillation)."""

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.sdn.controller import SdnController
from repro.sdn.stats import StatsService
from repro.sdn.te import EgressGroup, TrafficEngineeringApp
from repro.simkernel.kernel import Simulator


@pytest.fixture
def world():
    """Figure 5 in miniature: cdn -> (B small | C big) -> core -> client."""
    sim = Simulator(seed=0)
    topo = Topology()
    topo.add_node("cdn", NodeKind.SERVER, owner="cdn")
    topo.add_node("B", NodeKind.PEERING, owner="isp")
    topo.add_node("C", NodeKind.PEERING, owner="isp")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("client", NodeKind.CLIENT, owner="isp")
    topo.add_link("cdn", "B", 1000.0, delay_ms=1.0)
    topo.add_link("cdn", "C", 1000.0, delay_ms=5.0)
    topo.add_link("B", "core", 10.0, delay_ms=1.0, tags=("peering",))
    topo.add_link("C", "core", 100.0, delay_ms=1.0, tags=("peering",))
    topo.add_link("core", "client", 1000.0, delay_ms=1.0)
    network = FluidNetwork(sim, topo)
    controller = SdnController(network, owner="isp")
    stats = StatsService(sim, controller, period=1.0)
    group = EgressGroup(
        name="cdn",
        remote="cdn",
        candidates=["B", "C"],
        egress_links={"B": "B->core", "C": "C->core"},
        preferred="B",
    )
    return sim, network, controller, stats, group


class TestStatsService:
    def test_polls_periodically(self, world):
        sim, network, controller, stats, _ = world
        sim.run(until=5.5)
        assert stats.polls == 5

    def test_latest_observation(self, world):
        sim, network, controller, stats, _ = world
        network.start_stream("cdn", "client", demand_mbps=8.0, via="B")
        sim.run(until=2.5)
        assert stats.utilization("B->core") == pytest.approx(0.8)

    def test_congestion_flag_after_sustained_load(self, world):
        sim, network, controller, stats, _ = world
        network.start_stream("cdn", "client", demand_mbps=20.0, via="B")
        sim.run(until=20.0)
        assert stats.is_congested("B->core")
        assert "B->core" in stats.congested_links()

    def test_unknown_link_defaults(self, world):
        _, _, _, stats, _ = world
        assert stats.utilization("nope") == 0.0
        assert not stats.is_congested("nope")


class TestTrafficEngineering:
    def test_initial_selection_applied(self, world):
        sim, network, controller, stats, group = world
        te = TrafficEngineeringApp(
            sim, network, controller, stats, [group], period=10.0
        )
        assert te.selection("cdn") == "B"
        assert network.via_policy("cdn") == "B"

    def test_greedy_flees_congestion(self, world):
        sim, network, controller, stats, group = world
        te = TrafficEngineeringApp(
            sim, network, controller, stats, [group], period=10.0
        )
        network.start_stream("cdn", "client", demand_mbps=30.0, owner="cdn")
        sim.run(until=35.0)
        assert te.selection("cdn") == "C"
        assert te.switch_count("cdn") >= 1

    def test_greedy_returns_to_preferred_and_oscillates(self, world):
        sim, network, controller, stats, group = world
        te = TrafficEngineeringApp(
            sim, network, controller, stats, [group], period=10.0
        )
        network.start_stream("cdn", "client", demand_mbps=30.0, owner="cdn")
        sim.run(until=300.0)
        # It keeps bouncing B <-> C: at least 4 re-selections.
        assert te.switch_count("cdn") >= 4

    def test_rerouting_moves_live_flows(self, world):
        sim, network, controller, stats, group = world
        te = TrafficEngineeringApp(
            sim, network, controller, stats, [group], period=10.0
        )
        transfer = network.start_stream("cdn", "client", demand_mbps=30.0, owner="cdn")
        sim.run(until=35.0)
        assert any(link.src == "C" for link in transfer.flow.path)

    def test_policy_must_return_candidate(self, world):
        sim, network, controller, stats, group = world

        def bad_policy(app, g):
            return "nonsense"

        te = TrafficEngineeringApp(
            sim, network, controller, stats, [group], period=10.0, policy=bad_policy
        )
        with pytest.raises(ValueError):
            sim.run(until=15.0)

    def test_egress_utilization_report(self, world):
        sim, network, controller, stats, group = world
        te = TrafficEngineeringApp(
            sim, network, controller, stats, [group], period=10.0
        )
        network.start_stream("cdn", "client", demand_mbps=5.0, owner="cdn")
        sim.run(until=3.0)
        report = te.egress_utilization("cdn")
        assert report["B"] == pytest.approx(0.5)
        assert report["C"] == 0.0


class TestEgressGroupValidation:
    def test_needs_candidates(self):
        with pytest.raises(ValueError):
            EgressGroup(name="g", remote="r", candidates=[], egress_links={})

    def test_needs_link_per_candidate(self):
        with pytest.raises(ValueError):
            EgressGroup(
                name="g", remote="r", candidates=["B"], egress_links={}
            )
