"""Switch FlowMod handling and controller path install/resolve."""

import pytest

from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.sdn.controller import ForwardingLoopError, SdnController
from repro.sdn.messages import FlowMod, FlowModCommand, Match
from repro.sdn.switch import Switch
from repro.simkernel.kernel import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=0)
    topo = Topology()
    topo.add_node("cdn", NodeKind.SERVER, owner="cdn")
    topo.add_node("pB", NodeKind.PEERING, owner="isp")
    topo.add_node("pC", NodeKind.PEERING, owner="isp")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("client", NodeKind.CLIENT, owner="isp")
    topo.add_link("cdn", "pB", 10.0, delay_ms=1.0)
    topo.add_link("cdn", "pC", 10.0, delay_ms=5.0)
    topo.add_link("pB", "core", 10.0, delay_ms=1.0)
    topo.add_link("pC", "core", 10.0, delay_ms=1.0)
    topo.add_link("core", "client", 10.0, delay_ms=1.0)
    network = FluidNetwork(sim, topo)
    controller = SdnController(network, owner="isp")
    return sim, network, controller


class TestSwitch:
    def test_flow_mod_add_and_delete(self, world):
        _, network, controller = world
        switch = controller.switches["pB"]
        switch.handle_flow_mod(
            FlowMod(FlowModCommand.ADD, Match(group="g"), next_hop="core")
        )
        assert switch.next_hop("x", "y", "g") == "core"
        switch.handle_flow_mod(
            FlowMod(FlowModCommand.DELETE, Match(group="g"))
        )
        assert switch.next_hop("x", "y", "g") is None
        assert len(switch.drain_removed()) == 1

    def test_add_requires_next_hop(self, world):
        _, _, controller = world
        switch = controller.switches["pB"]
        with pytest.raises(ValueError):
            switch.handle_flow_mod(FlowMod(FlowModCommand.ADD, Match()))

    def test_invalid_next_hop_rejected(self, world):
        _, _, controller = world
        switch = controller.switches["pB"]
        with pytest.raises(ValueError):
            switch.handle_flow_mod(
                FlowMod(FlowModCommand.ADD, Match(), next_hop="client")
            )

    def test_stats_reply_reports_outgoing_links(self, world):
        sim, network, controller = world
        network.start_transfer("cdn", "client", 100.0, via="pB")
        reply = controller.switches["pB"].stats_reply(sim.now)
        port = reply.port("pB->core")
        assert port is not None
        assert port.load_mbps > 0


class TestController:
    def test_only_owner_nodes_get_switches(self, world):
        _, _, controller = world
        assert set(controller.switches) == {"pB", "pC", "core", "client"}

    def test_install_path_skips_foreign_nodes(self, world):
        _, _, controller = world
        sent = controller.install_path(
            ["cdn", "pC", "core"], Match(group="g"), cookie="te:g"
        )
        assert sent == 1  # only pC is isp-owned with a next hop

    def test_resolve_follows_installed_rules(self, world):
        _, _, controller = world
        # Default path goes via pB (lower delay); steer core-bound
        # traffic for group "g" through pC at the cdn... cdn has no
        # switch, so steer at resolution start: install on pC and check
        # fallback+rule mix by resolving from pC.
        controller.install_path(["pC", "core", "client"], Match(group="g"))
        path = controller.resolve_path("pC", "client", "g")
        assert path == ["pC", "core", "client"]

    def test_resolve_falls_back_to_shortest(self, world):
        _, _, controller = world
        assert controller.resolve_path("cdn", "client", "any") == [
            "cdn", "pB", "core", "client",
        ]

    def test_loop_detection(self, world):
        _, _, controller = world
        switch_core = controller.switches["core"]
        switch_b = controller.switches["pB"]
        # core -> pB? no such link; build loop pB->core, core->client ok.
        # Force a loop by sending core traffic back toward pB's neighbor.
        # core has no link back to pB, so simulate via client: no
        # outgoing links from client at all -> install nothing; instead
        # create a two-node loop between pB and core via bad rules:
        topo = controller.network.topology
        topo.add_link("core", "pB", 10.0, delay_ms=1.0)
        switch_core.handle_flow_mod(
            FlowMod(FlowModCommand.ADD, Match(group="g"), next_hop="pB")
        )
        switch_b.handle_flow_mod(
            FlowMod(FlowModCommand.ADD, Match(group="g"), next_hop="core")
        )
        with pytest.raises(ForwardingLoopError):
            controller.resolve_path("pB", "client", "g")

    def test_remove_by_cookie(self, world):
        _, _, controller = world
        controller.install_path(["pB", "core", "client"], Match(group="g"), cookie="c1")
        removed = controller.remove_by_cookie("c1")
        assert removed == 2
