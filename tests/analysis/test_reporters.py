"""Golden-output tests for the text, JSON, and SARIF reporters.

The rendered bytes are part of simlint's contract: CI artifacts and
committed baselines get diffed, so key order, indentation, and the
trailing newline must never drift by accident.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.core import Finding
from repro.analysis.reporters import render_json, render_sarif, render_text

FINDINGS = [
    Finding(
        path="src/repro/network/a.py",
        line=3,
        col=4,
        rule="no-print",
        message="print() in library code",
    ),
    Finding(
        path="src/repro/network/b.py",
        line=1,
        col=0,
        rule="parse-error",
        message="cannot parse file: invalid syntax",
    ),
]


def render(renderer, findings) -> str:
    buf = io.StringIO()
    renderer(findings, buf)
    return buf.getvalue()


def test_text_golden() -> None:
    assert render(render_text, FINDINGS) == (
        "src/repro/network/a.py:3:4 no-print print() in library code\n"
        "src/repro/network/b.py:1:0 parse-error "
        "cannot parse file: invalid syntax\n"
        "simlint: 2 finding(s) in 2 file(s)\n"
    )


def test_text_clean_golden() -> None:
    assert render(render_text, []) == "simlint: clean\n"


def test_json_golden() -> None:
    assert render(render_json, FINDINGS) == (
        '{\n'
        '  "count": 2,\n'
        '  "findings": [\n'
        '    {\n'
        '      "col": 4,\n'
        '      "line": 3,\n'
        '      "message": "print() in library code",\n'
        '      "path": "src/repro/network/a.py",\n'
        '      "rule": "no-print"\n'
        '    },\n'
        '    {\n'
        '      "col": 0,\n'
        '      "line": 1,\n'
        '      "message": "cannot parse file: invalid syntax",\n'
        '      "path": "src/repro/network/b.py",\n'
        '      "rule": "parse-error"\n'
        '    }\n'
        '  ],\n'
        '  "tool": "simlint"\n'
        '}\n'
    )


def test_sarif_structure_and_stability() -> None:
    first = render(render_sarif, FINDINGS)
    assert first == render(render_sarif, FINDINGS)  # byte-stable
    payload = json.loads(first)
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simlint"
    # rule metadata covers exactly the rules that fired, sorted.
    assert [r["id"] for r in driver["rules"]] == ["no-print", "parse-error"]
    assert all(r["shortDescription"]["text"] for r in driver["rules"])


def test_sarif_result_locations_are_one_based() -> None:
    payload = json.loads(render(render_sarif, FINDINGS))
    results = payload["runs"][0]["results"]
    assert len(results) == 2
    first = results[0]
    assert first["ruleId"] == "no-print"
    assert first["level"] == "warning"
    assert first["ruleIndex"] == 0
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 5}  # col 4 -> column 5
    uri = first["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "src/repro/network/a.py"


def test_sarif_parse_errors_report_as_error_level() -> None:
    payload = json.loads(render(render_sarif, FINDINGS))
    levels = {r["ruleId"]: r["level"] for r in payload["runs"][0]["results"]}
    assert levels["parse-error"] == "error"


def test_sarif_empty_run_is_valid() -> None:
    payload = json.loads(render(render_sarif, []))
    assert payload["runs"][0]["results"] == []
    assert payload["runs"][0]["tool"]["driver"]["rules"] == []


@pytest.mark.parametrize("renderer", [render_text, render_json, render_sarif])
def test_reports_end_with_single_newline(renderer) -> None:
    out = render(renderer, FINDINGS)
    assert out.endswith("\n") and not out.endswith("\n\n")
