"""The four cross-module rules, each against a live in-memory tree.

The fixture-tree golden test covers the canned cases end to end; these
tests build tiny trees in ``tmp_path`` so each rule's *negative* space
(configurations that must stay quiet) is pinned too.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.analysis.config import SimlintConfig
from repro.analysis.core import Finding
from repro.analysis.runner import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def make_tree(tmp_path: Path, files: Dict[str, str]) -> Path:
    root = tmp_path / "src" / "repro"
    for rel, body in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
    return tmp_path / "src"


def run(tmp_path: Path, files: Dict[str, str], config_dict: dict) -> List[Finding]:
    src = make_tree(tmp_path, files)
    config = SimlintConfig.from_dict(config_dict)
    return lint_paths([src], config)


BASE_LAYERS = {"layers": {"network": [], "core": [], "video": [], "cohorts": []}}


# ---------------------------------------------------------------------------
# rng-stream-discipline
# ---------------------------------------------------------------------------
def test_rng_streams_single_layer_ownership_is_quiet(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "network/a.py": """
                def f(rng):
                    return rng.get("alpha"), rng.get("alpha")
            """,
            "core/b.py": """
                def g(rng):
                    return rng.generator("beta")
            """,
        },
        BASE_LAYERS,
    )
    assert [f for f in findings if f.rule == "rng-stream-discipline"] == []


def test_rng_stream_prefix_collision_across_layers(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "network/a.py": """
                def f(rng, i):
                    return rng.get(f"radio:{i}")
            """,
            "core/b.py": """
                def g(rng):
                    return rng.get("radio:7")
            """,
        },
        BASE_LAYERS,
    )
    hits = [f for f in findings if f.rule == "rng-stream-discipline"]
    assert len(hits) == 2  # both colliding sites are reported
    assert all("owned by exactly one layer" in f.message for f in hits)


def test_rng_dict_get_with_default_not_confused(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "network/a.py": """
                def f(table, key):
                    return table.get(key, None)
            """,
        },
        BASE_LAYERS,
    )
    assert [f for f in findings if f.rule == "rng-stream-discipline"] == []


# ---------------------------------------------------------------------------
# vec-twin-drift
# ---------------------------------------------------------------------------
TWIN_CONFIG = {
    **BASE_LAYERS,
    "twins": [
        {
            "vec": "repro.cohorts.v.step_vec",
            "scalar": "repro.video.s.step_scalar",
        }
    ],
}


def test_twins_in_lockstep_are_quiet(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "cohorts/v.py": """
                def step_vec(x, rate, floor_s=0.5):
                    return max(x - rate * 2.0, 0.0)
            """,
            "video/s.py": """
                def step_scalar(x, rate, floor_s=0.5):
                    return max(x - rate * 2.0, 0.0)
            """,
        },
        TWIN_CONFIG,
    )
    assert [f for f in findings if f.rule == "vec-twin-drift"] == []


def test_twin_signature_drift_fires(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "cohorts/v.py": """
                def step_vec(x, pace):
                    return x - pace
            """,
            "video/s.py": """
                def step_scalar(x, rate):
                    return x - rate
            """,
        },
        TWIN_CONFIG,
    )
    hits = [f for f in findings if f.rule == "vec-twin-drift"]
    assert len(hits) == 1
    assert "signature drift" in hits[0].message


def test_twin_method_receiver_is_skipped(tmp_path: Path) -> None:
    config = {
        **BASE_LAYERS,
        "twins": [
            {
                "vec": "repro.cohorts.v.pick_vec",
                "scalar": "repro.video.s.Ladder.pick",
                "checks": ["signature", "defaults"],
            }
        ],
    }
    findings = run(
        tmp_path,
        {
            "cohorts/v.py": """
                def pick_vec(ladder, cap_mbps=8.0):
                    return cap_mbps
            """,
            "video/s.py": """
                class Ladder:
                    def pick(self, cap_mbps=8.0):
                        return cap_mbps
            """,
        },
        config,
    )
    assert [f for f in findings if f.rule == "vec-twin-drift"] == []


def test_twin_pair_skipped_when_module_absent(tmp_path: Path) -> None:
    # Only the vec side's tree is linted: the rule must stay quiet.
    findings = run(
        tmp_path,
        {
            "cohorts/v.py": """
                def step_vec(x):
                    return x
            """,
        },
        TWIN_CONFIG,
    )
    assert [f for f in findings if f.rule == "vec-twin-drift"] == []


# ---------------------------------------------------------------------------
# beacon-schema-sync
# ---------------------------------------------------------------------------
BEACON_CONFIG = {
    **BASE_LAYERS,
    "rules": {
        "beacon-schema-sync": {
            "producers": ["repro.video.prod.make"],
            "cohort-attrs": "repro.cohorts.spec.Spec.beacon_attrs",
            "aggregator": "repro.core.agg.Agg",
        }
    },
}

BEACON_FILES = {
    "video/prod.py": """
        def make(cdn, isp):
            attrs = {"cdn": cdn, "isp": isp}
            return attrs
    """,
    "cohorts/spec.py": """
        class Spec:
            def beacon_attrs(self):
                return {}  # populated via stores below

            def full_attrs(self):
                attrs = {"cdn": "x", "isp": "y", "tier": "hd"}
                return attrs
    """,
    "core/agg.py": """
        class Agg:
            def __init__(self, group_keys=()):
                self.group_keys = tuple(group_keys)
    """,
}


def test_beacon_schema_in_sync_is_quiet(tmp_path: Path) -> None:
    files = dict(BEACON_FILES)
    files["cohorts/spec.py"] = """
        class Spec:
            def beacon_attrs(self):
                attrs = {"cdn": "x", "isp": "y", "tier": "hd"}
                return attrs
    """
    files["core/use.py"] = """
        from repro.core.agg import Agg

        def build():
            return Agg(group_keys=("cdn", "isp"))
    """
    findings = run(tmp_path, files, BEACON_CONFIG)
    assert [f for f in findings if f.rule == "beacon-schema-sync"] == []


def test_beacon_cohort_missing_produced_attr_fires(tmp_path: Path) -> None:
    files = dict(BEACON_FILES)
    files["cohorts/spec.py"] = """
        class Spec:
            def beacon_attrs(self):
                attrs = {"cdn": "x"}
                return attrs
    """
    findings = run(tmp_path, files, BEACON_CONFIG)
    hits = [f for f in findings if f.rule == "beacon-schema-sync"]
    assert len(hits) == 1
    assert "'isp'" in hits[0].message


def test_beacon_unknown_group_key_fires_at_call_site(tmp_path: Path) -> None:
    files = dict(BEACON_FILES)
    files["cohorts/spec.py"] = """
        class Spec:
            def beacon_attrs(self):
                attrs = {"cdn": "x", "isp": "y"}
                return attrs
    """
    files["core/use.py"] = """
        from repro.core.agg import Agg

        def build():
            return Agg(group_keys=("cdn", "city"))
    """
    findings = run(tmp_path, files, BEACON_CONFIG)
    hits = [f for f in findings if f.rule == "beacon-schema-sync"]
    assert len(hits) == 1
    assert hits[0].path.endswith("core/use.py")
    assert "city" in hits[0].message


# ---------------------------------------------------------------------------
# process-global-state
# ---------------------------------------------------------------------------
def test_global_state_readonly_constants_are_quiet(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "network/consts.py": """
                CAPACITY_MBPS = {"edge": 100, "core": 400}
                NAMES = ["a", "b"]

                def lookup(kind):
                    return CAPACITY_MBPS[kind]
            """,
        },
        BASE_LAYERS,
    )
    assert [f for f in findings if f.rule == "process-global-state"] == []


def test_global_state_cross_module_mutation_detected(tmp_path: Path) -> None:
    findings = run(
        tmp_path,
        {
            "network/registry.py": """
                TABLE = {}
            """,
            "core/writer.py": """
                from repro.network.registry import TABLE

                def put(name):
                    TABLE[name] = name
            """,
        },
        BASE_LAYERS,
    )
    hits = [f for f in findings if f.rule == "process-global-state"]
    assert len(hits) == 1
    assert hits[0].path.endswith("network/registry.py")


def test_global_state_allowlist_and_frozen_instances(tmp_path: Path) -> None:
    config = {
        **BASE_LAYERS,
        "rules": {
            "process-global-state": {
                "allow": ["repro.network.reg.SANCTIONED"],
            }
        },
    }
    findings = run(
        tmp_path,
        {
            "network/reg.py": """
                from dataclasses import dataclass

                SANCTIONED = {}

                @dataclass(frozen=True)
                class Cfg:
                    value: int = 1

                DEFAULT = Cfg()

                def put(name):
                    SANCTIONED[name] = name
            """,
        },
        config,
    )
    assert [f for f in findings if f.rule == "process-global-state"] == []
