"""Config loading: layer DAG validation, rule scopes, discovery."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.config import ConfigError, RuleScope, SimlintConfig

FIXTURES = Path(__file__).parent / "fixtures"


def test_default_config_is_valid_and_matches_pyproject() -> None:
    default = SimlintConfig.default()
    repo_root = Path(__file__).resolve().parents[2]
    from_file = SimlintConfig.from_pyproject(repo_root / "pyproject.toml")
    assert from_file.layers == default.layers
    assert from_file.scopes == default.scopes


def test_cyclic_layer_dag_is_rejected() -> None:
    with pytest.raises(ConfigError, match="cycle"):
        SimlintConfig.from_dict(
            {"layers": {"a": ["b"], "b": ["c"], "c": ["a"]}}
        )


def test_self_cycle_is_rejected() -> None:
    with pytest.raises(ConfigError, match="cycle"):
        SimlintConfig.from_dict({"layers": {"a": ["a"]}})


def test_malformed_layer_table_is_rejected() -> None:
    with pytest.raises(ConfigError, match="must be a list"):
        SimlintConfig.from_dict({"layers": {"a": "b"}})


def test_rule_scope_layers_restriction() -> None:
    scope = RuleScope(layers=frozenset({"network", "core"}))
    assert scope.applies("src/repro/network/x.py", "network")
    assert not scope.applies("src/repro/cli.py", "cli")
    assert not scope.applies("tests/foo.py", None)


def test_rule_scope_exclusions_and_allow_files() -> None:
    scope = RuleScope(
        exclude_layers=frozenset({"cli"}),
        allow_files=("simkernel/rngstreams.py",),
    )
    assert not scope.applies("src/repro/cli.py", "cli")
    assert not scope.applies("src/repro/simkernel/rngstreams.py", "simkernel")
    assert scope.applies("src/repro/simkernel/kernel.py", "simkernel")
    # Files with no layer (tests, benchmarks) still lint under open scopes.
    assert scope.applies("benchmarks/bench_x.py", None)


def test_discover_walks_up_to_nearest_pyproject() -> None:
    config = SimlintConfig.discover(FIXTURES / "src" / "repro" / "network")
    # The fixture DAG is the small one, not the repo default.
    assert set(config.layers) == {
        "simkernel", "network", "video", "telemetry", "cohorts", "core",
        "experiments",
    }


def test_allowed_imports_for_undeclared_layer_is_none() -> None:
    config = SimlintConfig.default()
    assert config.allowed_imports("nonexistent") is None
    assert config.allowed_imports("network") == frozenset({"obs", "simkernel"})
