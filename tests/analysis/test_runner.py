"""Runner/CLI behavior: module inference, exit codes, JSON report, eona lint."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro import cli
from repro.analysis import runner
from repro.analysis.config import SimlintConfig
from repro.analysis.runner import lint_file, module_info

FIXTURES = Path(__file__).parent / "fixtures"


def test_module_info_real_tree() -> None:
    module, layer = module_info(Path("src/repro/network/routing.py"))
    assert module == "repro.network.routing"
    assert layer == "network"
    module, layer = module_info(Path("src/repro/cli.py"))
    assert module == "repro.cli"
    assert layer == "cli"
    module, layer = module_info(Path("src/repro/network/__init__.py"))
    assert module == "repro.network"
    assert layer == "network"


def test_module_info_fixture_tree_and_outsiders() -> None:
    module, layer = module_info(
        FIXTURES / "src" / "repro" / "core" / "bad_floateq.py"
    )
    assert module == "repro.core.bad_floateq"
    assert layer == "core"
    assert module_info(Path("benchmarks/bench_allocator.py")) == (None, None)


def test_cli_exit_one_and_json_schema_on_findings() -> None:
    out = io.StringIO()
    code = runner.main(
        [
            str(FIXTURES / "src"),
            "--config", str(FIXTURES / "pyproject.toml"),
            "--format", "json",
        ],
        stream=out,
    )
    assert code == 1
    payload = json.loads(out.getvalue())
    assert payload["tool"] == "simlint"
    assert payload["count"] == len(payload["findings"]) > 0
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "message"}


def test_cli_exit_zero_on_clean_file() -> None:
    out = io.StringIO()
    clean = FIXTURES / "src" / "repro" / "network" / "good_suppressed.py"
    code = runner.main(
        [str(clean), "--config", str(FIXTURES / "pyproject.toml")],
        stream=out,
    )
    assert code == 0
    assert "clean" in out.getvalue()


def test_cli_exit_two_on_bad_usage() -> None:
    assert runner.main(["--select", "no-such-rule", "."]) == 2
    assert runner.main(["definitely/not/a/path.py"]) == 2


def test_cli_select_limits_rules() -> None:
    out = io.StringIO()
    code = runner.main(
        [
            str(FIXTURES / "src"),
            "--config", str(FIXTURES / "pyproject.toml"),
            "--select", "no-print",
            "--format", "json",
        ],
        stream=out,
    )
    assert code == 1
    payload = json.loads(out.getvalue())
    assert {f["rule"] for f in payload["findings"]} == {"no-print"}


def test_cli_list_rules() -> None:
    out = io.StringIO()
    assert runner.main(["--list-rules"], stream=out) == 0
    listing = out.getvalue()
    for rule_id in (
        "global-rng", "wall-clock", "layering", "mutable-default",
        "unordered-iter", "float-eq", "handler-purity", "no-print",
    ):
        assert rule_id in listing


def test_eona_lint_subcommand_forwards(capsys) -> None:
    code = cli.main(["lint", "--list-rules"])
    assert code == 0
    assert "layering" in capsys.readouterr().out


def test_parse_error_reported_as_finding(tmp_path: Path) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = lint_file(bad, SimlintConfig.default())
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"
    assert findings[0].line == 1


def test_parse_error_does_not_abort_sibling_files(tmp_path: Path) -> None:
    (tmp_path / "broken.py").write_text("def oops(:\n")
    (tmp_path / "fine.py").write_text("X = 1\n")
    findings = runner.lint_paths([tmp_path], SimlintConfig.default())
    assert [f.rule for f in findings] == ["parse-error"]
    paths = {e.path for e in runner.run_lint(
        [tmp_path], SimlintConfig.default()
    ).graph.entries()}
    assert any(p.endswith("fine.py") for p in paths)
