"""Every simlint rule, exercised against the fixture tree + golden JSON.

The fixture tree under ``fixtures/src/repro`` mirrors the real package
layout so layer inference runs the exact code path used on the shipped
tree; ``fixtures/pyproject.toml`` provides a deliberately small layer DAG
so these tests cover config loading too.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import PROJECT_RULES, RULES, SimlintConfig, lint_paths
from repro.analysis.rules import META_RULES, all_rule_ids

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def fixture_config() -> SimlintConfig:
    return SimlintConfig.from_pyproject(FIXTURES / "pyproject.toml")


@pytest.fixture(scope="module")
def fixture_findings(fixture_config: SimlintConfig):
    return lint_paths(
        [FIXTURES / "src"], fixture_config, display_root=FIXTURES
    )


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURES / "expected.json", encoding="utf-8") as handle:
        return json.load(handle)


def test_findings_match_golden_json(fixture_findings, golden) -> None:
    actual = [finding.to_json() for finding in fixture_findings]
    assert actual == golden["findings"]
    assert len(fixture_findings) == golden["count"]


@pytest.mark.parametrize(
    "rule_id", sorted(RULES) + sorted(PROJECT_RULES) + sorted(META_RULES)
)
def test_every_rule_has_fixture_coverage(rule_id, fixture_findings) -> None:
    hits = [f for f in fixture_findings if f.rule == rule_id]
    assert hits, f"no fixture triggers rule {rule_id!r}"


def test_good_files_are_clean(fixture_findings) -> None:
    flagged = {finding.path for finding in fixture_findings}
    assert not any("good_" in path for path in flagged)


def test_layering_respects_allowed_edges(fixture_findings) -> None:
    layering = [f for f in fixture_findings if f.rule == "layering"]
    assert {f.line for f in layering} == {3, 5, 7, 9}
    assert all("repro.core" in f.message for f in layering)


def test_rng_allows_seeded_random_instances(fixture_findings) -> None:
    rng = [f for f in fixture_findings if f.rule == "global-rng"]
    # The `allowed(rng: random.Random)` helper at the bottom of bad_rng.py
    # must not fire; its def sits past every expected finding.
    assert max(f.line for f in rng) < 26


def test_float_eq_sees_both_operands_and_negation(fixture_findings) -> None:
    floats = [f for f in fixture_findings if f.rule == "float-eq"]
    assert [f.line for f in floats] == [5, 5, 9]
    assert any("-0.25" in f.message for f in floats)


def test_purity_flags_only_registered_handlers(fixture_findings) -> None:
    purity = [f for f in fixture_findings if f.rule == "handler-purity"]
    assert purity
    assert all("not_a_handler" not in f.message for f in purity)


def test_finding_format_is_precise(fixture_findings) -> None:
    line = fixture_findings[0].format()
    # file:line:col rule-id message
    path, lineno, rest = line.split(":", 2)
    col, rule, _message = rest.split(" ", 2)
    assert path.endswith(".py")
    assert lineno.isdigit() and col.isdigit()
    assert rule in all_rule_ids()
