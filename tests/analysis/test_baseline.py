"""Baseline workflow: write, load, delta semantics, CLI gating."""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.analysis import runner
from repro.analysis.baseline import (
    BaselineError,
    delta,
    load_baseline,
    render_baseline,
)
from repro.analysis.core import Finding

FIXTURES = Path(__file__).parent / "fixtures"


def f(path: str, line: int, rule: str, message: str) -> Finding:
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


def test_baseline_round_trip(tmp_path: Path) -> None:
    findings = [
        f("a.py", 3, "no-print", "print"),
        f("a.py", 9, "no-print", "print"),
        f("b.py", 1, "float-eq", "eq"),
    ]
    target = tmp_path / "base.json"
    target.write_text(render_baseline(findings), encoding="utf-8")
    loaded = load_baseline(target)
    assert loaded == {
        ("a.py", "no-print", "print"): 2,
        ("b.py", "float-eq", "eq"): 1,
    }


def test_baseline_is_line_drift_tolerant() -> None:
    baseline = {("a.py", "no-print", "print"): 1}
    moved = [f("a.py", 99, "no-print", "print")]  # same finding, new line
    assert delta(moved, baseline) == []


def test_delta_reports_only_excess() -> None:
    baseline = {("a.py", "no-print", "print"): 1}
    findings = [
        f("a.py", 3, "no-print", "print"),
        f("a.py", 9, "no-print", "print"),
        f("c.py", 2, "layering", "bad import"),
    ]
    excess = delta(findings, baseline)
    assert [(x.path, x.line, x.rule) for x in excess] == [
        ("a.py", 9, "no-print"),
        ("c.py", 2, "layering"),
    ]


def test_baseline_rejects_garbage(tmp_path: Path) -> None:
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text(json.dumps({"tool": "other"}))
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text(json.dumps({"tool": "simlint", "version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        load_baseline(bad)


def test_baseline_output_is_stable() -> None:
    findings = [
        f("b.py", 1, "float-eq", "eq"),
        f("a.py", 3, "no-print", "print"),
    ]
    assert render_baseline(findings) == render_baseline(list(reversed(findings)))
    payload = json.loads(render_baseline(findings))
    assert [e["path"] for e in payload["entries"]] == ["a.py", "b.py"]


def test_cli_baseline_write_then_gate(tmp_path: Path, monkeypatch) -> None:
    monkeypatch.chdir(FIXTURES)
    base = tmp_path / "baseline.json"
    out = io.StringIO()
    code = runner.main(
        ["src", "--config", "pyproject.toml", "--baseline", str(base)],
        stream=out,
    )
    assert code == 0
    assert base.exists()
    # Same tree gated against the fresh baseline: no delta, exit 0.
    out = io.StringIO()
    code = runner.main(
        ["src", "--config", "pyproject.toml", "--against-baseline", str(base)],
        stream=out,
    )
    assert code == 0
    assert "clean" in out.getvalue()


def test_cli_against_baseline_flags_new_findings(tmp_path: Path, monkeypatch) -> None:
    monkeypatch.chdir(FIXTURES)
    base = tmp_path / "baseline.json"
    runner.main(
        ["src", "--config", "pyproject.toml", "--baseline", str(base)],
        stream=io.StringIO(),
    )
    # Drop one entry from the baseline: that finding becomes "new".
    payload = json.loads(base.read_text())
    removed = payload["entries"].pop()
    base.write_text(json.dumps(payload))
    out = io.StringIO()
    code = runner.main(
        ["src", "--config", "pyproject.toml", "--against-baseline", str(base)],
        stream=out,
    )
    assert code == 1
    assert removed["rule"] in out.getvalue()


def test_cli_baseline_flags_are_exclusive(tmp_path: Path) -> None:
    base = tmp_path / "b.json"
    code = runner.main(
        [".", "--baseline", str(base), "--against-baseline", str(base)]
    )
    assert code == 2


def test_cli_against_missing_baseline_is_usage_error(monkeypatch) -> None:
    monkeypatch.chdir(FIXTURES)
    code = runner.main(
        ["src", "--config", "pyproject.toml",
         "--against-baseline", "does-not-exist.json"],
    )
    assert code == 2
