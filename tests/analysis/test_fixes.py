"""Auto-fix layer: edit application, --fix CLI, --fix --check idempotency."""

from __future__ import annotations

import io
import shutil
import textwrap
from pathlib import Path

from repro.analysis import runner
from repro.analysis.config import SimlintConfig
from repro.analysis.core import Edit, Finding, Fix
from repro.analysis.fixes import fix_file

FIXTURES = Path(__file__).parent / "fixtures"


def finding_with_edits(*edits: Edit) -> Finding:
    return Finding(
        path="x.py", line=edits[0].line, col=edits[0].col,
        rule="unordered-iter", message="m", fix=Fix(edits=tuple(edits)),
    )


def test_fix_file_applies_insertions_in_order() -> None:
    source = "for x in {1, 2}:\n    pass\n"
    f = finding_with_edits(
        Edit(1, 9, 1, 9, "sorted("),
        Edit(1, 15, 1, 15, ")"),
    )
    fixed, applied, skipped = fix_file(source, [f])
    assert fixed == "for x in sorted({1, 2}):\n    pass\n"
    assert (applied, skipped) == (1, 0)


def test_fix_file_whole_line_deletion() -> None:
    source = "a = 1\n# simlint: ignore\nb = 2\n"
    f = finding_with_edits(Edit(2, 0, 3, 0, ""))
    fixed, applied, skipped = fix_file(source, [f])
    assert fixed == "a = 1\nb = 2\n"
    assert applied == 1


def test_fix_file_skips_overlapping_fix_whole() -> None:
    source = "value = compute(1, 2)\n"
    keep = finding_with_edits(Edit(1, 8, 1, 21, "other()"))
    clash = finding_with_edits(Edit(1, 8, 1, 15, ""), Edit(1, 16, 1, 17, "9"))
    fixed, applied, skipped = fix_file(source, [keep, clash])
    assert fixed == "value = other()\n"
    assert (applied, skipped) == (1, 1)


def test_fix_file_rejects_out_of_range_edits() -> None:
    source = "a = 1\n"
    f = finding_with_edits(Edit(9, 0, 9, 4, "x"))
    fixed, applied, skipped = fix_file(source, [f])
    assert fixed == source
    assert (applied, skipped) == (0, 1)


def copy_fixture_tree(tmp_path: Path) -> Path:
    root = tmp_path / "fixtures"
    shutil.copytree(FIXTURES, root)
    return root


def test_cli_fix_rewrites_and_rereports(tmp_path: Path, monkeypatch) -> None:
    root = copy_fixture_tree(tmp_path)
    monkeypatch.chdir(root)
    out = io.StringIO()
    code = runner.main(
        ["src", "--config", "pyproject.toml", "--fix"], stream=out
    )
    text = out.getvalue()
    # unordered-iter sites get wrapped; stale suppressions get deleted.
    fixed_ordering = (root / "src/repro/network/bad_ordering.py").read_text()
    assert "for key in sorted(pending.keys()):" in fixed_ordering
    assert "for x in sorted(set(xs)):" in fixed_ordering
    assert "[x for x in sorted({3, 1, 2})]" in fixed_ordering
    fixed_stale = (root / "src/repro/network/bad_stale.py").read_text()
    assert "ignore[wall-clock]" in fixed_stale
    assert "global-rng" not in fixed_stale
    assert "no-print" not in fixed_stale
    assert fixed_stale.rstrip().endswith("return value")
    assert "fixed: src/repro/network/bad_ordering.py" in text
    # Plenty of unfixable findings remain.
    assert code == 1
    assert "unordered-iter" not in text.split("fixed:")[-1]


def test_cli_fix_is_idempotent(tmp_path: Path, monkeypatch) -> None:
    root = copy_fixture_tree(tmp_path)
    monkeypatch.chdir(root)
    runner.main(["src", "--config", "pyproject.toml", "--fix"],
                stream=io.StringIO())
    after_first = {
        p: p.read_text() for p in sorted((root / "src").rglob("*.py"))
    }
    out = io.StringIO()
    code = runner.main(
        ["src", "--config", "pyproject.toml", "--fix", "--check"], stream=out
    )
    assert code == 0, out.getvalue()
    assert "no pending fixes" in out.getvalue()
    after_second = {
        p: p.read_text() for p in sorted((root / "src").rglob("*.py"))
    }
    assert after_first == after_second


def test_cli_fix_check_reports_without_writing(tmp_path: Path, monkeypatch) -> None:
    root = copy_fixture_tree(tmp_path)
    monkeypatch.chdir(root)
    before = (root / "src/repro/network/bad_ordering.py").read_text()
    out = io.StringIO()
    code = runner.main(
        ["src", "--config", "pyproject.toml", "--fix", "--check"], stream=out
    )
    assert code == 1
    assert "would fix: src/repro/network/bad_ordering.py" in out.getvalue()
    assert (root / "src/repro/network/bad_ordering.py").read_text() == before


def test_cli_check_requires_fix() -> None:
    assert runner.main(["--check", "."]) == 2


def test_fix_preserves_used_suppressions(tmp_path: Path, monkeypatch) -> None:
    src = tmp_path / "src" / "repro" / "network"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(
        textwrap.dedent(
            """
            import time  # simlint: ignore[obs-hotpath]


            def stamp() -> float:
                return time.time()  # simlint: ignore[wall-clock]
            """
        ).lstrip()
    )
    monkeypatch.chdir(tmp_path)
    config = SimlintConfig.default()
    out = io.StringIO()
    code = runner.main(["src", "--fix"], stream=out)
    assert code == 0
    assert "simlint: ignore[obs-hotpath]" in (src / "mod.py").read_text()
    assert "simlint: ignore[wall-clock]" in (src / "mod.py").read_text()
    assert config.scope_for("wall-clock").applies(
        "src/repro/network/mod.py", "network"
    )
