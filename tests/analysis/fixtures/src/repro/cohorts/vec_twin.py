"""Fixture: vectorized twin that has drifted from its scalar source."""


def step_vec(level_s, drain_rate, floor_s=0.25):
    drained = level_s - drain_rate
    return max(drained, 0.1)


def orphan_vec(x):
    return x
