"""Fixture: cohort mirror that dropped a produced beacon attribute."""


class FixtureSpec:
    def beacon_attrs(self):
        attrs = {"cdn": "cdnX", "isp": "isp1"}
        attrs["tier"] = "hd"
        return attrs
