"""Fixture: aggregation sites grouping on keys the schema disagrees on."""

from repro.telemetry.beacons import Agg


def build():
    return Agg(group_keys=("cdn", "city", "app"))
