"""Fixture: draws the same named stream from a second layer."""


def draw(streams):
    return streams.get("shared-stream")
