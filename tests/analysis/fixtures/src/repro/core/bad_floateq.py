"""Fixture: exact float comparisons in allocation-layer code."""


def converged(a: float, b: float) -> bool:
    return a == 0.5 or b != 1.0


def negated(x: float) -> bool:
    return x == -0.25


def sentinel(rate: float) -> bool:
    return rate == 0.0  # simlint: ignore[float-eq] -- assigned, never computed


def allowed(a: float, b: float, n: int) -> bool:
    return abs(a - b) < 1e-9 and n == 0
