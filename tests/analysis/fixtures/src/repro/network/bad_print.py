"""Fixture: print() in library code."""


def report(value: float) -> None:
    print(f"value={value}")


def fine(value: float) -> str:
    return f"value={value}"
