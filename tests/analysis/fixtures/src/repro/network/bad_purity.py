"""Fixture: kernel event handlers mutating module-level state."""

COUNTERS = {}
TOTAL = 0.0


def on_tick(sim) -> None:
    global TOTAL
    TOTAL = TOTAL + 1.0
    COUNTERS["ticks"] = 1
    sim.schedule(1.0, on_tick, sim)


class Node:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.count = 0

    def start(self) -> None:
        self.sim.schedule(0.5, self._on_timer)
        self.sim.call_soon(self._on_timer)

    def _on_timer(self) -> None:
        COUNTERS.setdefault("timers", 0)
        self.count += 1  # instance state is fine


def not_a_handler() -> None:
    # Mutates module state but is never registered with the kernel.
    COUNTERS["free"] = 1
