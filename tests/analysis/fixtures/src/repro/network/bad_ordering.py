"""Fixture: iteration with no deterministic order."""

from typing import Dict, List


def drain(pending: Dict[str, float]) -> List[str]:
    order = []
    for key in pending.keys():
        order.append(key)
    return order


def dedupe(xs: List[int]) -> List[int]:
    out = []
    for x in set(xs):
        out.append(x)
    return out


def literals() -> List[int]:
    return [x for x in {3, 1, 2}]


def allowed(pending: Dict[str, float], xs: List[int]) -> List[str]:
    ordered = [k for k in sorted(pending)]
    ordered.extend(str(x) for x in sorted(set(xs)))
    for key in pending:  # plain dict iteration is insertion-ordered
        ordered.append(key)
    return ordered
