"""Fixture: imports the time module inside a sim layer.

``time.sleep`` is not a clock *reader*, so the wall-clock rule stays
silent -- only obs-hotpath should flag this file (once, for the import).
"""

import time


def backoff() -> None:
    time.sleep(0.1)
