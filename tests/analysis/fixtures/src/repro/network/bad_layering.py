"""Fixture: layering violations (network may only import simkernel)."""

import repro.core.infp

from repro.core import damping

from repro import core

from ..core import staleness

from repro.simkernel.kernel import Simulator

from . import bad_rng

__all__ = [
    "repro",
    "damping",
    "core",
    "staleness",
    "Simulator",
    "bad_rng",
]
