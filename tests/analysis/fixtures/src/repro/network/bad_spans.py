"""Fixture: builds span machinery and mints cause IDs by hand.

Four span-discipline findings: two constructions (a local tracer, a
local span forest) and two ad-hoc cause counters (a bare name and an
attribute).  The bare references never resolve at runtime -- simlint
only reads the AST.
"""


class _LoopState:
    def __init__(self):
        self.next_cause = 0


def rebuild(events):
    tracer = LocalTracer()  # noqa: F821
    forest = SpanForest(events)  # noqa: F821
    next_cause = 0
    next_cause += 1
    state = _LoopState()
    state.next_cause += 1
    return tracer, forest, next_cause, state
