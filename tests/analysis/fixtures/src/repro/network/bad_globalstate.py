"""Fixture: module-level mutable state (fork-safety hazard)."""

from dataclasses import dataclass

REGISTRY = {}
ALLOWED_REGISTRY = {}
CONSTANTS = {"capacity_mbps": 100}
CACHE = []


class Tracker:
    def __init__(self) -> None:
        self.events = []


TRACKER = Tracker()


@dataclass(frozen=True)
class FrozenCfg:
    value: int = 1


DEFAULT_CFG = FrozenCfg()


def remember(name: str) -> None:
    REGISTRY[name] = name
    ALLOWED_REGISTRY[name] = name
    CACHE.append(name)
