"""Fixture: global-rng violations (and the allowed seeded-instance pattern)."""

import random

import numpy as np

from random import randint


def draw() -> float:
    return random.random()


def shuffle(xs: list) -> None:
    random.shuffle(xs)


def noise() -> float:
    return float(np.random.normal())


def reseed() -> None:
    np.random.seed(7)


def allowed(rng: random.Random) -> int:
    # A seeded, explicitly-threaded instance is exactly what we want.
    return randint(0, 1) if False else int(rng.random())
