"""Fixture: live-networking imports outside the TCP transport adapter.

Three findings: the plain import, the submodule import, and the
from-import.  A sim layer must never touch real sockets or event
loops -- that machinery lives behind the Transport protocol.
"""

import asyncio
import socketserver
from socket import create_connection


def dial(host: str, port: int) -> None:
    asyncio.run(asyncio.sleep(0))
    socketserver.TCPServer.allow_reuse_address = True
    create_connection((host, port))
