"""Fixture: file that does not parse; the run must degrade, not abort."""


def broken(:
    return 1
