"""Fixture: RNG stream discipline violations, all four kinds."""

import random


class RngStreams:
    def get(self, name):
        return random.Random(0)


STREAMS = RngStreams()


def sample(rng, name):
    unnamed = rng.get(name)
    shared = rng.get("shared-stream")
    direct = random.Random(7)
    return unnamed, shared, direct
