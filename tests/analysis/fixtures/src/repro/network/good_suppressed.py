"""Fixture: violations disarmed by inline suppressions -> zero findings."""

import time  # simlint: ignore[obs-hotpath]


def stamp() -> float:
    return time.time()  # simlint: ignore[wall-clock]


def report(value: float) -> None:
    print(value)  # simlint: ignore


def both(d: dict) -> None:
    for k in d.keys():  # simlint: ignore[unordered-iter]
        pass
