"""Fixture: mutable default arguments."""

from collections import deque
from typing import Optional


def gather(into=[]) -> list:
    return into


def index(table={}) -> dict:
    return table


def uniq(seen=set(), extra=deque()) -> set:
    return seen


def keyword_only(*, acc=[1, 2]) -> list:
    return acc


def allowed(items: Optional[list] = None, limit: int = 10, name: str = "x") -> list:
    return items if items is not None else []
