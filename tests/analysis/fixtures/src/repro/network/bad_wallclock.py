"""Fixture: wall-clock violations inside a sim layer."""

import time

from datetime import datetime

from time import perf_counter


def stamp() -> float:
    return time.time()


def when() -> str:
    return str(datetime.now())


def tick() -> float:
    return time.monotonic()
