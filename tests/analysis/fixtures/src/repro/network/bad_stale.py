"""Fixture: suppressions that no longer suppress anything."""

import time  # simlint: ignore[obs-hotpath]


def stamp() -> float:
    return time.time()  # simlint: ignore[wall-clock, global-rng]


def quiet() -> int:
    value = 1  # simlint: ignore[no-print]
    return value  # simlint: ignore
