"""Fixture: beacon producer and aggregator anchors."""


def make_record(cdn, isp):
    attrs = {"cdn": cdn, "isp": isp, "app": "video"}
    return attrs


class Agg:
    def __init__(self, group_keys=()):
        self.group_keys = tuple(group_keys)
