"""Fixture: scalar reference implementation of a twin step."""


def step_scalar(level_s, drain_rate, floor_s=0.5):
    drained = level_s - drain_rate
    return max(drained, 0.0)
