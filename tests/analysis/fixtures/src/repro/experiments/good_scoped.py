"""Fixture: rules scoped away from the experiments layer -> zero findings."""

import time


def elapsed() -> float:
    # Experiments measure real wall clock for scalability tables.
    return time.time()


def frac(x: float) -> bool:
    # float-eq applies only to network/ and core/.
    return x == 0.5
