"""Project graph: construction, resolution, call targets, parse failures."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.config import SimlintConfig
from repro.analysis.project import build_project
from repro.analysis.runner import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def graph():
    config = SimlintConfig.from_pyproject(FIXTURES / "pyproject.toml")
    files = list(iter_python_files([FIXTURES / "src"], config))
    return build_project(files, config, display_root=FIXTURES)


def test_modules_indexed_by_dotted_name(graph) -> None:
    entry = graph.modules["repro.network.bad_ordering"]
    assert entry.layer == "network"
    assert entry.path == "src/repro/network/bad_ordering.py"


def test_resolve_function_class_and_method(graph) -> None:
    import ast

    entry, node = graph.resolve("repro.video.scalar_twin.step_scalar")
    assert isinstance(node, ast.FunctionDef) and node.name == "step_scalar"
    entry, node = graph.resolve("repro.telemetry.beacons.Agg")
    assert isinstance(node, ast.ClassDef)
    entry, node = graph.resolve(
        "repro.cohorts.beacon_specs.FixtureSpec.beacon_attrs"
    )
    assert isinstance(node, ast.FunctionDef) and node.name == "beacon_attrs"


def test_resolve_missing_symbol_and_module(graph) -> None:
    assert graph.resolve("repro.video.scalar_twin.nope") is None
    assert graph.resolve("repro.nowhere.at_all") is None
    assert graph.module_prefix_of("repro.video.scalar_twin.nope") is not None
    assert graph.module_prefix_of("repro.nowhere.at_all") is None


def test_resolve_call_target_through_from_import(graph) -> None:
    import ast

    entry = graph.modules["repro.core.aggregator_use"]
    call = next(
        node
        for node in ast.walk(entry.ctx.tree)
        if isinstance(node, ast.Call)
    )
    assert (
        graph.resolve_call_target(entry, call.func)
        == "repro.telemetry.beacons.Agg"
    )


def test_parse_failures_are_collected_not_fatal(graph) -> None:
    assert [f.path for f in graph.failures] == [
        "src/repro/network/bad_parse.py"
    ]
    failure = graph.failures[0]
    assert failure.line >= 1
    assert "parse" in failure.message


def test_entries_are_sorted_by_path(graph) -> None:
    paths = [entry.path for entry in graph.entries()]
    assert paths == sorted(paths)
