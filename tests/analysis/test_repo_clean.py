"""The shipped tree must be simlint-clean: CI gates on this invariant.

If this test fails, either fix the violation (preferred) or, for an
intentional exact-sentinel / measurement site, add an inline
``# simlint: ignore[rule-id]`` with a justification.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import SimlintConfig, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_is_simlint_clean() -> None:
    config = SimlintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    findings = lint_paths(
        [REPO_ROOT / "src" / "repro"], config, display_root=REPO_ROOT
    )
    report = "\n".join(finding.format() for finding in findings)
    assert not findings, f"simlint violations in shipped code:\n{report}"


def test_layer_dag_covers_every_shipped_package() -> None:
    config = SimlintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    src = REPO_ROOT / "src" / "repro"
    shipped = {
        child.name
        for child in src.iterdir()
        if child.is_dir() and child.name != "__pycache__"
    }
    shipped.update(
        child.stem for child in src.glob("*.py") if child.stem != "__init__"
    )
    undeclared = shipped - set(config.layers)
    assert not undeclared, (
        f"packages missing from [tool.simlint.layers]: {sorted(undeclared)}"
    )
