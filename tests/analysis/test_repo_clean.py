"""The shipped tree must be simlint-clean: CI gates on this invariant.

If this test fails, either fix the violation (preferred) or, for an
intentional exact-sentinel / measurement site, add an inline
``# simlint: ignore[rule-id]`` with a justification.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import SimlintConfig, lint_paths, run_lint
from repro.analysis.baseline import delta, load_baseline
from repro.analysis.fixes import plan_fixes

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_is_simlint_clean() -> None:
    config = SimlintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    findings = lint_paths(
        [REPO_ROOT / "src" / "repro"], config, display_root=REPO_ROOT
    )
    report = "\n".join(finding.format() for finding in findings)
    assert not findings, f"simlint violations in shipped code:\n{report}"


def test_shipped_tree_is_a_fixed_point_of_the_fixer() -> None:
    """``eona lint --fix --check`` must be a no-op on the committed tree."""
    config = SimlintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    run = run_lint(
        [REPO_ROOT / "src" / "repro"], config, display_root=REPO_ROOT
    )
    sources = {e.path: e.ctx.source for e in run.graph.entries()}
    report = plan_fixes(run.findings, sources)
    assert report.changed_files == [], (
        f"--fix would modify committed files: {report.changed_files}"
    )


def test_committed_baseline_has_no_delta() -> None:
    """CI gates on the delta vs simlint-baseline.json staying empty."""
    config = SimlintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    findings = lint_paths(
        [REPO_ROOT / "src" / "repro"], config, display_root=REPO_ROOT
    )
    baseline = load_baseline(REPO_ROOT / "simlint-baseline.json")
    excess = delta(findings, baseline)
    report = "\n".join(finding.format() for finding in excess)
    assert not excess, f"findings not covered by the baseline:\n{report}"


def test_layer_dag_covers_every_shipped_package() -> None:
    config = SimlintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    src = REPO_ROOT / "src" / "repro"
    shipped = {
        child.name
        for child in src.iterdir()
        if child.is_dir() and child.name != "__pycache__"
    }
    shipped.update(
        child.stem for child in src.glob("*.py") if child.stem != "__init__"
    )
    undeclared = shipped - set(config.layers)
    assert not undeclared, (
        f"packages missing from [tool.simlint.layers]: {sorted(undeclared)}"
    )
