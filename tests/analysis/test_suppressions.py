"""Unit tests for the `# simlint: ignore[...]` suppression parser."""

from __future__ import annotations

from repro.analysis.suppressions import collect_suppressions, is_suppressed


def test_bare_ignore_suppresses_everything() -> None:
    sup = collect_suppressions("x = 1  # simlint: ignore\n")
    assert is_suppressed(sup, 1, "wall-clock")
    assert is_suppressed(sup, 1, "anything-at-all")
    assert not is_suppressed(sup, 2, "wall-clock")


def test_bracketed_ignore_is_rule_specific() -> None:
    sup = collect_suppressions("x = 1  # simlint: ignore[float-eq, no-print]\n")
    assert is_suppressed(sup, 1, "float-eq")
    assert is_suppressed(sup, 1, "no-print")
    assert not is_suppressed(sup, 1, "wall-clock")


def test_comment_inside_string_does_not_count() -> None:
    sup = collect_suppressions('x = "# simlint: ignore"\n')
    assert sup == {}


def test_trailing_prose_after_marker_is_fine() -> None:
    sup = collect_suppressions(
        "y = 0.0  # simlint: ignore[float-eq] -- exact sentinel\n"
    )
    assert is_suppressed(sup, 1, "float-eq")


def test_multiple_markers_per_file() -> None:
    source = (
        "a = 1  # simlint: ignore[rule-a]\n"
        "b = 2\n"
        "c = 3  # simlint: ignore\n"
    )
    sup = collect_suppressions(source)
    assert is_suppressed(sup, 1, "rule-a")
    assert not is_suppressed(sup, 1, "rule-b")
    assert not is_suppressed(sup, 2, "rule-a")
    assert is_suppressed(sup, 3, "rule-b")
