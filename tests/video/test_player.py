"""Adaptive player: session lifecycle over a real fluid network."""

import pytest

from repro.cdn.content import ContentCatalog
from repro.cdn.origin import Origin
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.video.abr import RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER
from repro.video.player import AdaptivePlayer, PlayerPolicy, SessionAssignment


def _world(access_mbps=8.0, degraded=None, two_servers=False):
    sim = Simulator(seed=3)
    topo = Topology()
    topo.add_node("origin", NodeKind.ORIGIN)
    topo.add_node("edge", NodeKind.SERVER)
    topo.add_node("isp", NodeKind.ROUTER)
    topo.add_node("client", NodeKind.CLIENT)
    if two_servers:
        topo.add_node("edge2", NodeKind.SERVER)
        topo.add_link("edge2", "isp", 100.0)
        topo.add_link("origin", "edge2", 50.0)
    topo.add_link("origin", "edge", 50.0)
    topo.add_link("edge", "isp", 100.0)
    topo.add_link("isp", "client", access_mbps)
    net = FluidNetwork(sim, topo)
    servers = [
        CdnServer("s1", "edge", capacity_sessions=10, degraded_rate_mbps=degraded)
    ]
    if two_servers:
        servers.append(CdnServer("s2", "edge2", capacity_sessions=10))
    cdn = Cdn("cdn", servers, origin=Origin("origin"))
    catalog = ContentCatalog(n_items=3, duration_s=40.0)
    return sim, net, cdn, catalog


class FixedPolicy(PlayerPolicy):
    def __init__(self, cdn):
        self.cdn = cdn
        self.chunks_seen = 0
        self.ended = 0

    def assign(self, player):
        return SessionAssignment(cdn=self.cdn)

    def on_chunk(self, player, record):
        self.chunks_seen += 1

    def on_session_end(self, player):
        self.ended += 1


def _player(sim, net, cdn, catalog, policy=None, **kwargs):
    return AdaptivePlayer(
        sim,
        net,
        session_id="s1",
        client_node="client",
        content=catalog.by_rank(0),
        ladder=DEFAULT_LADDER,
        abr=RateBasedAbr(),
        policy=policy or FixedPolicy(cdn),
        **kwargs,
    )


class TestLifecycle:
    def test_completes_and_reports_qoe(self):
        sim, net, cdn, catalog = _world()
        policy = FixedPolicy(cdn)
        player = _player(sim, net, cdn, catalog, policy)
        player.start()
        sim.run(until=300.0)
        assert player.ended
        qoe = player.qoe()
        assert qoe.joined
        assert qoe.play_time_s == pytest.approx(40.0)
        assert policy.chunks_seen == player.n_chunks
        assert policy.ended == 1

    def test_detaches_from_cdn_on_end(self):
        sim, net, cdn, catalog = _world()
        player = _player(sim, net, cdn, catalog)
        player.start()
        sim.run(until=300.0)
        assert cdn.active_sessions == 0

    def test_double_start_rejected(self):
        sim, net, cdn, catalog = _world()
        player = _player(sim, net, cdn, catalog)
        player.start()
        with pytest.raises(RuntimeError):
            player.start()

    def test_abort_marks_abandoned(self):
        sim, net, cdn, catalog = _world()
        player = _player(sim, net, cdn, catalog)
        player.start()
        sim.schedule(5.0, player.abort)
        sim.run(until=300.0)
        assert player.qoe().abandoned

    def test_buffer_cap_paces_downloads(self):
        sim, net, cdn, catalog = _world(access_mbps=100.0)
        player = _player(sim, net, cdn, catalog, max_buffer_s=8.0)
        player.start()
        sim.run(until=300.0)
        levels = [record.buffer_level_s for record in player.chunk_records]
        assert max(levels) <= 8.0 + 1e-6


class TestAdversity:
    def test_starved_player_rebuffers(self):
        sim, net, cdn, catalog = _world(degraded=0.3)
        player = _player(sim, net, cdn, catalog, abandon_rebuffer_s=None)
        player.start()
        sim.run(until=1000.0)
        qoe = player.qoe()
        assert qoe.rebuffer_time_s > 0
        assert qoe.mean_bitrate_mbps <= 0.75

    def test_abandonment_threshold(self):
        sim, net, cdn, catalog = _world(degraded=0.1)
        player = _player(sim, net, cdn, catalog, abandon_rebuffer_s=20.0)
        player.start()
        sim.run(until=2000.0)
        qoe = player.qoe()
        assert qoe.abandoned
        assert qoe.rebuffer_time_s >= 20.0

    def test_rehomes_after_server_power_off(self):
        sim, net, cdn, catalog = _world(two_servers=True)
        player = _player(sim, net, cdn, catalog)
        player.start()

        def kill_current_server():
            server = cdn.server_of("s1")
            cdn.power_off_server(server.server_id)

        sim.schedule(10.0, kill_current_server)
        sim.run(until=400.0)
        assert player.ended
        assert player.qoe().server_switches >= 1
        assert not player.qoe().abandoned


class TestSwitching:
    def test_switch_cdn_counts_and_penalizes(self):
        sim, net, cdn, catalog = _world()
        other_servers = [CdnServer("o1", "edge", capacity_sessions=10)]
        other = Cdn("other", other_servers, origin=Origin("origin"))

        class SwitchOnce(FixedPolicy):
            def on_chunk(self, policy_self, record):  # noqa: N805
                pass

        policy = FixedPolicy(cdn)
        player = _player(sim, net, cdn, catalog, policy)
        player.start()
        sim.schedule(5.0, lambda: player.switch_cdn(other))
        sim.run(until=300.0)
        qoe = player.qoe()
        assert qoe.cdn_switches == 1
        assert player.cdn is other

    def test_switch_server_within_cdn(self):
        sim, net, cdn, catalog = _world(two_servers=True)
        player = _player(sim, net, cdn, catalog)
        player.start()
        sim.schedule(5.0, lambda: player.switch_server("s2"))
        sim.run(until=300.0)
        assert player.qoe().server_switches == 1

    def test_switch_to_full_cdn_fails_gracefully(self):
        sim, net, cdn, catalog = _world()
        full = Cdn("full", [CdnServer("f1", "edge", capacity_sessions=1)])
        full.attach("occupier")
        player = _player(sim, net, cdn, catalog)
        player.start()
        results = []
        sim.schedule(5.0, lambda: results.append(player.switch_cdn(full)))
        sim.run(until=300.0)
        assert results == [False]
        assert player.cdn is cdn
