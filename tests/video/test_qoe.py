"""QoE metrics and the engagement model's shape."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.video.qoe import (
    QoeMetrics,
    engagement_score,
    engagement_terms,
    summarize,
)


def _qoe(**kwargs):
    defaults = dict(
        session_id="s",
        join_time_s=1.0,
        play_time_s=100.0,
        rebuffer_time_s=0.0,
        mean_bitrate_mbps=3.0,
    )
    defaults.update(kwargs)
    return QoeMetrics(**defaults)


class TestMetrics:
    def test_buffering_ratio(self):
        qoe = _qoe(play_time_s=90.0, rebuffer_time_s=10.0)
        assert qoe.buffering_ratio == pytest.approx(0.1)

    def test_never_joined_session(self):
        qoe = QoeMetrics(session_id="s")
        assert not qoe.joined
        assert qoe.buffering_ratio == 1.0
        assert engagement_score(qoe) == 0.0


class TestEngagementShape:
    def test_buffering_dominates(self):
        clean = engagement_score(_qoe(rebuffer_time_s=0.0))
        buffered = engagement_score(_qoe(play_time_s=90.0, rebuffer_time_s=10.0))
        assert buffered < clean * 0.7

    def test_monotone_in_buffering(self):
        scores = [
            engagement_score(_qoe(play_time_s=100.0 - r, rebuffer_time_s=r))
            for r in (0.0, 2.0, 5.0, 10.0, 20.0)
        ]
        assert scores == sorted(scores, reverse=True)

    def test_saturates_at_heavy_buffering(self):
        qoe = _qoe(play_time_s=70.0, rebuffer_time_s=30.0)
        assert engagement_score(qoe) == 0.0

    def test_monotone_in_bitrate(self):
        scores = [
            engagement_score(_qoe(mean_bitrate_mbps=b))
            for b in (0.4, 1.5, 3.0, 6.0)
        ]
        assert scores == sorted(scores)

    def test_bitrate_lift_is_concave(self):
        low = engagement_score(_qoe(mean_bitrate_mbps=0.4))
        mid = engagement_score(_qoe(mean_bitrate_mbps=3.0))
        high = engagement_score(_qoe(mean_bitrate_mbps=6.0))
        assert (mid - low) > (high - mid)

    def test_slow_join_penalized(self):
        fast = engagement_score(_qoe(join_time_s=0.5))
        slow = engagement_score(_qoe(join_time_s=30.0))
        assert slow < fast

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=120.0),
    )
    def test_bounded_unit_interval(self, play, rebuffer, bitrate, join):
        qoe = _qoe(
            play_time_s=play,
            rebuffer_time_s=rebuffer,
            mean_bitrate_mbps=bitrate,
            join_time_s=join,
        )
        assert 0.0 <= engagement_score(qoe) <= 1.0


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary["sessions"] == 0
        assert summary["mean_engagement"] == 0.0

    def test_aggregates(self):
        sessions = [
            _qoe(session_id="a"),
            _qoe(session_id="b", play_time_s=50.0, rebuffer_time_s=50.0),
        ]
        summary = summarize(sessions)
        assert summary["sessions"] == 2
        assert summary["mean_buffering_ratio"] == pytest.approx(0.25)

    def test_never_joined_excluded_from_bitrate(self):
        sessions = [_qoe(), QoeMetrics(session_id="dead")]
        summary = summarize(sessions)
        assert summary["mean_bitrate_mbps"] == pytest.approx(3.0)


class TestEngagementTermsEdges:
    """Regression tests for the clamping behaviour of the pure scalar."""

    def test_matches_engagement_score_for_joined_sessions(self):
        qoe = _qoe(play_time_s=95.0, rebuffer_time_s=5.0)
        assert engagement_score(qoe) == pytest.approx(
            engagement_terms(qoe.buffering_ratio, 3.0, 1.0)
        )

    def test_negative_inputs_behave_as_zero(self):
        assert engagement_terms(-0.3, 3.0, 1.0) == engagement_terms(0.0, 3.0, 1.0)
        assert engagement_terms(0.0, -1.0, 1.0) == engagement_terms(0.0, 0.0, 1.0)
        assert engagement_terms(0.0, 3.0, -5.0) == engagement_terms(0.0, 3.0, 0.0)

    def test_heavy_buffering_saturates_at_zero(self):
        assert engagement_terms(0.2, 6.0, 0.0) == 0.0
        assert engagement_terms(1.0, 6.0, 0.0) == 0.0

    def test_degenerate_ladder_grants_full_bitrate_lift(self):
        degenerate = engagement_terms(0.0, 1.0, 0.0, max_bitrate_mbps=0.0)
        at_max = engagement_terms(0.0, 6.0, 0.0, max_bitrate_mbps=6.0)
        assert degenerate == pytest.approx(at_max)

    def test_bitrate_above_ladder_top_is_clamped(self):
        assert engagement_terms(0.0, 50.0, 0.0) == engagement_terms(0.0, 6.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=-1.0, max_value=2.0),
        st.floats(min_value=-10.0, max_value=100.0),
        st.floats(min_value=-10.0, max_value=600.0),
    )
    def test_always_in_unit_interval(self, ratio, bitrate, join):
        assert 0.0 <= engagement_terms(ratio, bitrate, join) <= 1.0


class TestSummarizeEdges:
    def test_no_joined_sessions_keeps_means_finite(self):
        dead = [QoeMetrics(session_id=f"d{i}") for i in range(3)]
        summary = summarize(dead)
        assert summary["mean_join_time_s"] == 0.0
        assert summary["mean_bitrate_mbps"] == 0.0
        assert summary["mean_engagement"] == 0.0
        assert summary["mean_buffering_ratio"] == 1.0

    def test_zero_play_zero_rebuffer_joined_session(self):
        # Joined but retired before playing anything: no buffering blame.
        qoe = QoeMetrics(session_id="s", join_time_s=2.0)
        assert qoe.buffering_ratio == 0.0
        summary = summarize([qoe])
        assert summary["mean_buffering_ratio"] == 0.0
        assert summary["mean_join_time_s"] == pytest.approx(2.0)
