"""Bitrate ladder arithmetic."""

import pytest

from repro.video.ladder import DEFAULT_LADDER, BitrateLadder


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_mbps=())

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_mbps=(3.0, 1.0))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_mbps=(1.0, 1.0))

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_mbps=(0.0, 1.0))


class TestArithmetic:
    def test_chunk_size(self):
        assert DEFAULT_LADDER.chunk_size_mbit(3.0) == 12.0

    def test_highest_at_most(self):
        assert DEFAULT_LADDER.highest_at_most(2.0) == 1.5
        assert DEFAULT_LADDER.highest_at_most(100.0) == 6.0
        assert DEFAULT_LADDER.highest_at_most(0.1) == 0.4  # below lowest

    def test_step_down_saturates(self):
        assert DEFAULT_LADDER.step_down(0.75) == 0.4
        assert DEFAULT_LADDER.step_down(0.4) == 0.4

    def test_step_up_saturates(self):
        assert DEFAULT_LADDER.step_up(3.0) == 6.0
        assert DEFAULT_LADDER.step_up(6.0) == 6.0

    def test_contains_and_index(self):
        assert 1.5 in DEFAULT_LADDER
        assert 2.0 not in DEFAULT_LADDER
        assert DEFAULT_LADDER.index_of(1.5) == 2

    def test_bounds(self):
        assert DEFAULT_LADDER.lowest == 0.4
        assert DEFAULT_LADDER.highest == 6.0
        assert len(DEFAULT_LADDER) == 5
