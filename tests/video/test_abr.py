"""ABR algorithms: selection logic and cap compliance."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.video.abr import (
    AbrContext,
    BolaAbr,
    BufferBasedAbr,
    FestiveAbr,
    RateBasedAbr,
)
from repro.video.ladder import DEFAULT_LADDER


def _ctx(samples=(), buffer=10.0, last=None, cap=math.inf):
    return AbrContext(
        ladder=DEFAULT_LADDER,
        buffer_level_s=buffer,
        throughput_samples_mbps=list(samples),
        last_bitrate_mbps=last,
        rate_cap_mbps=cap,
    )


class TestRateBased:
    def test_no_samples_starts_low(self):
        assert RateBasedAbr().choose(_ctx()) == DEFAULT_LADDER.lowest

    def test_picks_below_safety_fraction(self):
        # 0.85 * 4 = 3.4 -> rung 3.0
        assert RateBasedAbr().choose(_ctx(samples=[4.0])) == 3.0

    def test_harmonic_mean_punishes_dips(self):
        # arithmetic mean of (8, 1) is 4.5 but harmonic is ~1.78
        assert RateBasedAbr().choose(_ctx(samples=[8.0, 1.0])) == 1.5

    def test_cap_applies(self):
        abr = RateBasedAbr()
        assert abr.choose(_ctx(samples=[100.0], cap=1.5)) == 1.5

    def test_invalid_safety(self):
        with pytest.raises(ValueError):
            RateBasedAbr(safety=0.0)


class TestBufferBased:
    def test_reservoir_floor(self):
        abr = BufferBasedAbr(reservoir_s=5.0, cushion_s=15.0)
        assert abr.choose(_ctx(buffer=3.0)) == DEFAULT_LADDER.lowest

    def test_cushion_ceiling(self):
        abr = BufferBasedAbr(reservoir_s=5.0, cushion_s=15.0)
        assert abr.choose(_ctx(buffer=25.0)) == DEFAULT_LADDER.highest

    def test_linear_middle_monotone(self):
        abr = BufferBasedAbr(reservoir_s=5.0, cushion_s=15.0)
        chosen = [abr.choose(_ctx(buffer=level)) for level in (6.0, 10.0, 14.0, 19.0)]
        assert chosen == sorted(chosen)

    def test_ignores_throughput(self):
        abr = BufferBasedAbr()
        rich = abr.choose(_ctx(samples=[100.0], buffer=3.0))
        poor = abr.choose(_ctx(samples=[0.1], buffer=3.0))
        assert rich == poor

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BufferBasedAbr(reservoir_s=-1.0)
        with pytest.raises(ValueError):
            BufferBasedAbr(cushion_s=0.0)


class TestFestive:
    def test_first_chunk_is_lowest(self):
        assert FestiveAbr().choose(_ctx(samples=[10.0])) == DEFAULT_LADDER.lowest

    def test_upgrade_needs_patience(self):
        abr = FestiveAbr(up_patience=3)
        ctx = _ctx(samples=[10.0], last=1.5)
        assert abr.choose(ctx) == 1.5     # vote 1
        assert abr.choose(ctx) == 1.5     # vote 2
        assert abr.choose(ctx) == 3.0     # vote 3 -> one rung up

    def test_downgrade_is_immediate_but_single_step(self):
        abr = FestiveAbr()
        chosen = abr.choose(_ctx(samples=[0.3], last=6.0))
        assert chosen == 3.0  # one rung down from 6.0

    def test_downgrade_resets_up_votes(self):
        abr = FestiveAbr(up_patience=2)
        up_ctx = _ctx(samples=[10.0], last=1.5)
        abr.choose(up_ctx)                       # vote 1
        abr.choose(_ctx(samples=[0.3], last=1.5))  # down -> reset
        assert abr.choose(up_ctx) == 1.5           # vote 1 again

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FestiveAbr(safety=2.0)
        with pytest.raises(ValueError):
            FestiveAbr(up_patience=0)


class TestBola:
    def test_empty_buffer_is_lowest(self):
        assert BolaAbr().choose(_ctx(buffer=0.0)) == DEFAULT_LADDER.lowest

    def test_monotone_in_buffer(self):
        abr = BolaAbr()
        chosen = [
            abr.choose(_ctx(buffer=level)) for level in (0.0, 4.0, 8.0, 12.0, 18.0)
        ]
        assert chosen == sorted(chosen)

    def test_reaches_top_at_target(self):
        abr = BolaAbr(buffer_target_s=20.0)
        assert abr.choose(_ctx(buffer=20.0)) == DEFAULT_LADDER.highest

    def test_ignores_throughput(self):
        abr = BolaAbr()
        assert abr.choose(_ctx(samples=[100.0], buffer=2.0)) == abr.choose(
            _ctx(samples=[0.1], buffer=2.0)
        )

    def test_cap_applies(self):
        assert BolaAbr().choose(_ctx(buffer=25.0, cap=1.5)) == 1.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BolaAbr(gamma_p=0.0)
        with pytest.raises(ValueError):
            BolaAbr(buffer_target_s=-1.0)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), max_size=8),
        st.floats(min_value=0.0, max_value=60.0),
        st.sampled_from(DEFAULT_LADDER.bitrates_mbps),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_always_on_ladder_and_capped(self, samples, buffer, last, cap):
        for abr in (RateBasedAbr(), BufferBasedAbr(), FestiveAbr(), BolaAbr()):
            chosen = abr.choose(_ctx(samples=samples, buffer=buffer, last=last, cap=cap))
            assert chosen in DEFAULT_LADDER
            assert chosen <= max(cap, DEFAULT_LADDER.lowest)
