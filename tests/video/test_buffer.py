"""Playback buffer: join, drain, stall, and resume accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.video.buffer import PlaybackBuffer


def _buffer(startup=4.0, resume=4.0):
    buffer = PlaybackBuffer(startup_threshold_s=startup, resume_threshold_s=resume)
    buffer.bind_clock(0.0)
    return buffer


class TestJoin:
    def test_starts_at_threshold(self):
        buffer = _buffer(startup=4.0)
        buffer.add_chunk(4.0, now=1.5)
        assert buffer.started
        assert buffer.join_time_s == 1.5

    def test_not_started_below_threshold(self):
        buffer = _buffer(startup=8.0)
        buffer.add_chunk(4.0, now=1.0)
        assert not buffer.started
        assert buffer.join_time_s is None

    def test_waiting_time_before_join_not_rebuffering(self):
        buffer = _buffer()
        buffer.advance(10.0)
        assert buffer.rebuffer_time_s == 0.0


class TestDrain:
    def test_plays_down_linearly(self):
        buffer = _buffer()
        buffer.add_chunk(4.0, now=0.0)
        buffer.advance(3.0)
        assert buffer.level_s == pytest.approx(1.0)
        assert buffer.play_time_s == pytest.approx(3.0)

    def test_stall_when_empty(self):
        buffer = _buffer()
        buffer.add_chunk(4.0, now=0.0)
        buffer.advance(6.0)
        assert buffer.stalled
        assert buffer.rebuffer_time_s == pytest.approx(2.0)
        assert buffer.rebuffer_events == 1

    def test_resume_requires_threshold(self):
        buffer = _buffer(resume=4.0)
        buffer.add_chunk(4.0, now=0.0)
        buffer.advance(6.0)             # stalled at t=6 (2 s stall)
        buffer.add_chunk(2.0, now=7.0)  # below resume threshold
        assert buffer.stalled
        buffer.add_chunk(2.0, now=8.0)  # now at 4 s -> resume
        assert not buffer.stalled
        assert buffer.rebuffer_time_s == pytest.approx(4.0)

    def test_stall_time_while_stalled_counts(self):
        buffer = _buffer()
        buffer.add_chunk(4.0, now=0.0)
        buffer.advance(5.0)
        buffer.advance(9.0)
        assert buffer.rebuffer_time_s == pytest.approx(5.0)
        assert buffer.rebuffer_events == 1  # one continuous stall

    def test_buffering_ratio(self):
        buffer = _buffer()
        buffer.add_chunk(4.0, now=0.0)
        buffer.advance(5.0)  # 4 played + 1 stalled
        assert buffer.buffering_ratio == pytest.approx(0.2)

    def test_time_backwards_rejected(self):
        buffer = _buffer()
        buffer.advance(5.0)
        with pytest.raises(ValueError):
            buffer.advance(4.0)

    def test_drain_remaining(self):
        buffer = _buffer()
        buffer.add_chunk(8.0, now=0.0)
        assert buffer.drain_remaining(2.0) == pytest.approx(6.0)


class TestInvariants:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=10.0),  # gap to next event
                st.booleans(),                              # chunk arrives?
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_accounting_identity(self, events):
        """play + rebuffer + waiting-to-join == elapsed after join check,
        and level is never negative."""
        buffer = _buffer()
        now = 0.0
        for gap, has_chunk in events:
            now += gap
            if has_chunk:
                buffer.add_chunk(4.0, now=now)
            else:
                buffer.advance(now)
            assert buffer.level_s >= 0.0
            assert buffer.play_time_s >= 0.0
            assert buffer.rebuffer_time_s >= 0.0
            if buffer.started:
                join = buffer.join_time_s
                accounted = (
                    buffer.play_time_s + buffer.rebuffer_time_s + buffer.level_s
                )
                # Media downloaded equals media played + buffered; time
                # after join equals play + rebuffer.
                assert (
                    buffer.play_time_s + buffer.rebuffer_time_s
                    == pytest.approx(now - join, abs=1e-6)
                )
