"""Simulator clock semantics, run bounds, and error handling."""

import pytest

from repro.simkernel.kernel import SimError, Simulator


class TestScheduling:
    def test_schedule_relative(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_schedule_absolute(self, sim):
        fired = []
        sim.schedule_at(7.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.schedule_at(5.0, lambda: None)

    def test_nested_scheduling_from_event(self, sim):
        fired = []

        def first():
            sim.schedule(1.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [2.0]

    def test_call_soon_runs_at_current_time(self, sim):
        fired = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [3.0]


class TestRunBounds:
    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(100.0, lambda: None)
        stopped = sim.run(until=30.0)
        assert stopped == 30.0
        assert sim.now == 30.0
        assert sim.pending_events == 1

    def test_events_at_until_boundary_fire(self, sim):
        fired = []
        sim.schedule(30.0, lambda: fired.append(True))
        sim.run(until=30.0)
        assert fired == [True]

    def test_max_events_guard(self, sim):
        count = [0]

        def loop():
            count[0] += 1
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        sim.run(max_events=10)
        assert count[0] == 10

    def test_run_empty_advances_to_until(self, sim):
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_clock_monotone_over_run(self, sim):
        times = []
        for delay in (5.0, 1.0, 3.0, 1.0):
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)

    def test_reentrant_run_rejected(self, sim):
        def inner():
            with pytest.raises(SimError):
                sim.run()

        sim.schedule(1.0, inner)
        sim.run()


class TestDeterminism:
    def test_identical_seeds_identical_draws(self):
        a = Simulator(seed=7).rng.get("x").random()
        b = Simulator(seed=7).rng.get("x").random()
        assert a == b

    def test_events_executed_counter(self, sim):
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 4
