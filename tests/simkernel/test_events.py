"""Event queue ordering, cancellation, and tie-breaking."""

from repro.simkernel.events import EventQueue


def _collect(queue):
    fired = []
    while True:
        event = queue.pop()
        if event is None:
            return fired
        event.fn(*event.args)
        fired.append(event.time)
    return fired


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        out = []
        queue.push(3.0, out.append, ("c",))
        queue.push(1.0, out.append, ("a",))
        queue.push(2.0, out.append, ("b",))
        _collect(queue)
        assert out == ["a", "b", "c"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        out = []
        for label in "abcde":
            queue.push(1.0, out.append, (label,))
        _collect(queue)
        assert out == list("abcde")

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        out = []
        queue.push(1.0, out.append, ("low",), priority=5)
        queue.push(1.0, out.append, ("high",), priority=-5)
        _collect(queue)
        assert out == ["high", "low"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        out = []
        handle = queue.push(1.0, out.append, ("x",))
        queue.push(2.0, out.append, ("y",))
        handle.cancel()
        _collect(queue)
        assert out == ["y"]

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_peek_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 2.0

    def test_bool_on_all_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        assert not queue


class TestEmpty:
    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None
