"""Periodic process lifecycle: firing, stopping, re-pacing."""

import pytest

from repro.simkernel.processes import PeriodicProcess


class TestFiring:
    def test_fires_every_period(self, sim):
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_at_overrides_first_firing(self, sim):
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), start_at=3.0)
        sim.run(until=25.0)
        assert times == [3.0, 13.0, 23.0]

    def test_fire_count(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda: None)
        sim.run(until=5.5)
        assert process.fire_count == 5

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)


class TestStopRestart:
    def test_stop_halts_firing(self, sim):
        times = []
        process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.schedule(25.0, process.stop)
        sim.run(until=100.0)
        assert times == [10.0, 20.0]
        assert not process.running

    def test_stop_from_within_callback(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda: None)

        def stopper():
            if process.fire_count >= 3:
                process.stop()

        # Wrap: stop after the third firing.
        process.fn = stopper
        sim.run(until=100.0)
        assert process.fire_count == 3

    def test_restart_resumes(self, sim):
        times = []
        process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.schedule(15.0, process.stop)
        sim.schedule(50.0, process.restart)
        sim.run(until=75.0)
        assert times == [10.0, 50.0, 60.0, 70.0]

    def test_set_period_takes_effect_next_cycle(self, sim):
        times = []
        process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.schedule(10.5, lambda: process.set_period(5.0))
        sim.run(until=31.0)
        assert times == [10.0, 20.0, 25.0, 30.0]

    def test_set_period_invalid(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda: None)
        with pytest.raises(ValueError):
            process.set_period(-1.0)
