"""Named RNG stream independence and reproducibility."""

from hypothesis import given, strategies as st

from repro.simkernel.rngstreams import RngStreams


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RngStreams(1).get("arrivals").random()
        b = RngStreams(1).get("arrivals").random()
        assert a == b

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("arrivals").random()
        b = RngStreams(2).get("arrivals").random()
        assert a != b

    def test_different_names_differ(self):
        streams = RngStreams(1)
        assert streams.get("a").random() != streams.get("b").random()

    def test_request_order_independent(self):
        first = RngStreams(9)
        first.get("x")
        value_y_first = RngStreams(9)
        value_y_first.get("y")
        assert first.get("y").random() == value_y_first.get("y").random()

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.get("s") is streams.get("s")

    def test_spawn_derives_independent_registry(self):
        parent = RngStreams(5)
        child_a = parent.spawn("provider-a")
        child_b = parent.spawn("provider-b")
        assert child_a.get("x").random() != child_b.get("x").random()

    def test_spawn_reproducible(self):
        a = RngStreams(5).spawn("child").get("x").random()
        b = RngStreams(5).spawn("child").get("x").random()
        assert a == b


class TestProperties:
    @given(st.integers(), st.text(min_size=1, max_size=20))
    def test_any_seed_name_reproducible(self, seed, name):
        assert (
            RngStreams(seed).get(name).random()
            == RngStreams(seed).get(name).random()
        )

    @given(st.integers())
    def test_values_in_unit_interval(self, seed):
        value = RngStreams(seed).get("u").random()
        assert 0.0 <= value < 1.0


class TestNumpyGenerators:
    def test_same_seed_same_draws(self):
        a = RngStreams(3).generator("cohort-arrivals").random()
        b = RngStreams(3).generator("cohort-arrivals").random()
        assert a == b

    def test_request_order_independent(self):
        first = RngStreams(9)
        first.generator("x")
        other = RngStreams(9)
        other.generator("y")
        assert first.generator("y").random() == other.generator("y").random()

    def test_generator_is_cached(self):
        streams = RngStreams(0)
        assert streams.generator("g") is streams.generator("g")

    def test_distinct_from_stdlib_stream_of_same_name(self):
        streams = RngStreams(1)
        generator = streams.generator("shared-name")
        stream = streams.get("shared-name")
        # Consuming one family must not perturb the other.
        before = RngStreams(1).generator("shared-name").random()
        stream.random()
        streams2 = RngStreams(1)
        streams2.get("shared-name").random()
        assert streams2.generator("shared-name").random() == before
        assert generator is streams.generator("shared-name")

    def test_no_global_numpy_state(self):
        import numpy

        before = numpy.random.get_state()[1].copy()
        RngStreams(5).generator("anything").poisson(3.0, size=100)
        numpy.testing.assert_array_equal(before, numpy.random.get_state()[1])
