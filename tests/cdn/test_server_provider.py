"""CDN servers and the provider's request routing."""

import math

import pytest

from repro.cdn.content import ContentCatalog
from repro.cdn.origin import Origin
from repro.cdn.provider import Cdn, NoServerAvailableError
from repro.cdn.server import CdnServer, ServerOverloadedError


def _cdn(n_servers=2, capacity=3, origin=True, degraded_first=False):
    servers = [
        CdnServer(
            f"s{i}",
            f"node{i}",
            capacity_sessions=capacity,
            degraded_rate_mbps=0.3 if (degraded_first and i == 0) else None,
        )
        for i in range(n_servers)
    ]
    return Cdn("cdn", servers, origin=Origin("origin") if origin else None)


class TestServer:
    def test_assign_release(self):
        server = CdnServer("s", "n", capacity_sessions=2)
        server.assign("a")
        server.assign("b")
        assert server.load == 1.0
        with pytest.raises(ServerOverloadedError):
            server.assign("c")
        server.release("a")
        assert server.active_sessions == 1

    def test_release_idempotent(self):
        server = CdnServer("s", "n", capacity_sessions=1)
        server.release("ghost")

    def test_power_off_evicts(self):
        server = CdnServer("s", "n", capacity_sessions=2)
        server.assign("a")
        displaced = server.power_off()
        assert displaced == {"a"}
        assert not server.available
        with pytest.raises(ServerOverloadedError):
            server.assign("b")

    def test_degraded_flag(self):
        server = CdnServer("s", "n", capacity_sessions=1, degraded_rate_mbps=0.5)
        assert server.degraded


class TestAttachment:
    def test_least_loaded_selection(self):
        cdn = _cdn()
        cdn.attach("s1")
        server_2 = cdn.attach("s2")
        # Second session must land on the other (empty) server.
        assert server_2.server_id != cdn.server_of("s1").server_id

    def test_exclude(self):
        cdn = _cdn()
        first = cdn.attach("s1")
        moved = cdn.attach("s1", exclude=[first.server_id])
        assert moved.server_id != first.server_id

    def test_pin_to_server(self):
        cdn = _cdn()
        server = cdn.attach("s1", server_id="s1")
        assert server.server_id == "s1"

    def test_no_server_available(self):
        cdn = _cdn(n_servers=1, capacity=1)
        cdn.attach("a")
        with pytest.raises(NoServerAvailableError):
            cdn.attach("b")

    def test_detach_frees_capacity(self):
        cdn = _cdn(n_servers=1, capacity=1)
        cdn.attach("a")
        cdn.detach("a")
        cdn.attach("b")

    def test_power_off_server_purges_assignments(self):
        cdn = _cdn()
        server = cdn.attach("a")
        evicted = cdn.power_off_server(server.server_id)
        assert evicted == 1
        assert cdn.server_of("a") is None


class TestServing:
    def test_unattached_session_raises(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=2)
        with pytest.raises(KeyError):
            cdn.serve_chunk("ghost", catalog.by_rank(0))

    def test_miss_pulls_through_origin(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=2)
        cdn.attach("a")
        served = cdn.serve_chunk("a", catalog.by_rank(0))
        assert not served.cache_hit
        assert served.src_node == "origin"
        assert served.via_node is not None
        assert cdn.origin.fetches == 1

    def test_item_granularity_hit_after_miss(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=2)
        cdn.attach("a")
        cdn.serve_chunk("a", catalog.by_rank(0))
        second = cdn.serve_chunk("a", catalog.by_rank(0))
        assert second.cache_hit
        assert second.src_node != "origin"

    def test_chunk_granularity_misses_per_chunk(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=2)
        cdn.attach("a")
        item = catalog.by_rank(0)
        first = cdn.serve_chunk("a", item, chunk_key="x#0", chunk_mbit=4.0)
        second = cdn.serve_chunk("a", item, chunk_key="x#1", chunk_mbit=4.0)
        assert not first.cache_hit and not second.cache_hit
        repeat = cdn.serve_chunk("a", item, chunk_key="x#0", chunk_mbit=4.0)
        assert repeat.cache_hit

    def test_warm_caches_short_circuit_chunks(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=4)
        cdn.warm_caches(catalog, top_fraction=0.5)
        cdn.attach("a")
        warm = cdn.serve_chunk("a", catalog.by_rank(0), chunk_key="w#0")
        assert warm.cache_hit
        cold = cdn.serve_chunk("a", catalog.by_rank(3), chunk_key="c#0")
        assert not cold.cache_hit

    def test_degraded_server_caps_rate(self):
        cdn = _cdn(degraded_first=True)
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a", server_id="s0")
        served = cdn.serve_chunk("a", catalog.by_rank(0))
        assert served.rate_cap_mbps == 0.3

    def test_healthy_server_uncapped(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a", server_id="s1")
        served = cdn.serve_chunk("a", catalog.by_rank(0))
        assert math.isinf(served.rate_cap_mbps)

    def test_no_origin_serves_from_edge_on_miss(self):
        cdn = _cdn(origin=False)
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a")
        served = cdn.serve_chunk("a", catalog.by_rank(0))
        assert not served.cache_hit
        assert served.src_node.startswith("node")


class TestHints:
    def test_hints_sorted_healthy_first(self):
        cdn = _cdn(degraded_first=True)
        hints = cdn.server_hints()
        assert [h.server_id for h in hints] == ["s1", "s0"]
        assert hints[1].degraded

    def test_hints_respect_exclude(self):
        cdn = _cdn()
        hints = cdn.server_hints(exclude=["s0"])
        assert [h.server_id for h in hints] == ["s1"]

    def test_hints_skip_powered_off(self):
        cdn = _cdn()
        cdn.power_off_server("s0")
        assert [h.server_id for h in cdn.server_hints()] == ["s1"]

    def test_cache_hit_rate_aggregates(self):
        cdn = _cdn()
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a")
        cdn.serve_chunk("a", catalog.by_rank(0))
        cdn.serve_chunk("a", catalog.by_rank(0))
        assert cdn.cache_hit_rate() == pytest.approx(0.5)
