"""Stateful model-based test: LruCache against a reference model."""

from collections import OrderedDict

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.cdn.cache import LruCache

CAPACITY = 30.0


class LruModel(RuleBasedStateMachine):
    """Drives LruCache and a textbook OrderedDict model in lockstep."""

    def __init__(self):
        super().__init__()
        self.cache = LruCache(CAPACITY)
        self.model: "OrderedDict[str, float]" = OrderedDict()

    def _model_used(self) -> float:
        return sum(self.model.values())

    @rule(key=st.integers(min_value=0, max_value=12),
          size=st.floats(min_value=1.0, max_value=12.0))
    def lookup_then_insert(self, key, size):
        name = f"k{key}"
        cache_hit = self.cache.lookup(name)
        model_hit = name in self.model
        assert cache_hit == model_hit
        if model_hit:
            self.model.move_to_end(name)
        else:
            if size <= CAPACITY:
                while self._model_used() + size > CAPACITY and self.model:
                    self.model.popitem(last=False)
                self.model[name] = size
            self.cache.insert(name, size)

    @rule(key=st.integers(min_value=0, max_value=12))
    def lookup_only(self, key):
        name = f"k{key}"
        assert self.cache.lookup(name) == (name in self.model)
        if name in self.model:
            self.model.move_to_end(name)

    @rule()
    def clear(self):
        self.cache.clear()
        self.model.clear()

    @invariant()
    def same_contents(self):
        assert set(self.model) == {
            name for name in (f"k{i}" for i in range(13)) if name in self.cache
        }

    @invariant()
    def same_used_bytes(self):
        assert abs(self.cache.used_mbit - self._model_used()) < 1e-9

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_mbit <= CAPACITY + 1e-9


TestLruAgainstModel = LruModel.TestCase
TestLruAgainstModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
