"""Edge transcoder: slots, latency, and CDN/player integration."""

import pytest

from repro.cdn.content import ContentCatalog
from repro.cdn.origin import Origin
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.cdn.transcoder import Transcoder
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import NodeKind, Topology
from repro.simkernel.kernel import Simulator
from repro.video.abr import RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER
from repro.video.player import AdaptivePlayer, PlayerPolicy, SessionAssignment


class TestTranscoderUnit:
    def test_latency_scales_with_speed(self):
        transcoder = Transcoder("edge", slots=2, speed=8.0)
        assert transcoder.latency_s(4.0) == pytest.approx(0.5)

    def test_slots_bound_concurrency(self):
        transcoder = Transcoder("edge", slots=1)
        first = transcoder.try_start(4.0)
        assert first is not None
        assert transcoder.try_start(4.0) is None
        assert transcoder.stats.jobs_rejected == 1
        first.release()
        assert transcoder.try_start(4.0) is not None

    def test_release_idempotent(self):
        transcoder = Transcoder("edge", slots=1)
        job = transcoder.try_start(4.0)
        job.release()
        job.release()
        assert transcoder.active_jobs == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Transcoder("e", slots=0)
        with pytest.raises(ValueError):
            Transcoder("e", speed=0.0)


class TestCdnIntegration:
    def _cdn(self, transcoder=None):
        server = CdnServer("s", "edge", capacity_sessions=10)
        return Cdn("cdn", [server], origin=Origin("origin"),
                   transcoder=transcoder), server

    def test_transcode_instead_of_origin(self):
        cdn, server = self._cdn(Transcoder("edge"))
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a")
        item = catalog.by_rank(0)
        # Seed the high rung of chunk 0 into the cache.
        server.cache.insert("v#0@6.0", 24.0)
        served = cdn.serve_chunk(
            "a", item,
            chunk_key="v#0@1.5",
            chunk_mbit=6.0,
            fallback_keys=["v#0@6.0", "v#0@3.0"],
            media_duration_s=4.0,
        )
        assert served.transcode_job is not None
        assert served.src_node == "edge"
        assert cdn.origin.fetches == 0
        # The derived rung is now cached.
        assert "v#0@1.5" in server.cache
        served.transcode_job.release()

    def test_origin_when_no_higher_rung_cached(self):
        cdn, server = self._cdn(Transcoder("edge"))
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a")
        served = cdn.serve_chunk(
            "a", catalog.by_rank(0),
            chunk_key="v#0@1.5",
            chunk_mbit=6.0,
            fallback_keys=["v#0@6.0"],
            media_duration_s=4.0,
        )
        assert served.transcode_job is None
        assert served.src_node == "origin"

    def test_origin_when_slots_exhausted(self):
        transcoder = Transcoder("edge", slots=1)
        occupier = transcoder.try_start(4.0)
        cdn, server = self._cdn(transcoder)
        catalog = ContentCatalog(n_items=1)
        cdn.attach("a")
        server.cache.insert("v#0@6.0", 24.0)
        served = cdn.serve_chunk(
            "a", catalog.by_rank(0),
            chunk_key="v#0@1.5",
            chunk_mbit=6.0,
            fallback_keys=["v#0@6.0"],
            media_duration_s=4.0,
        )
        assert served.transcode_job is None
        assert served.src_node == "origin"
        occupier.release()


class TestPlayerIntegration:
    def test_session_over_transcoding_cdn_completes(self):
        sim = Simulator(seed=6)
        topo = Topology()
        topo.add_node("origin", NodeKind.ORIGIN)
        topo.add_node("edge", NodeKind.SERVER)
        topo.add_node("client", NodeKind.CLIENT)
        topo.add_link("origin", "edge", 2.0, delay_ms=40)  # painful origin
        topo.add_link("edge", "client", 50.0, delay_ms=5)
        net = FluidNetwork(sim, topo)
        transcoder = Transcoder("edge", slots=4, speed=8.0)
        server = CdnServer("s", "edge", capacity_sessions=10)
        cdn = Cdn("cdn", [server], origin=Origin("origin"), transcoder=transcoder)
        catalog = ContentCatalog(n_items=1, duration_s=40.0)
        # Edge holds the top rung of every chunk (e.g. pre-positioned
        # mezzanine); lower rungs are derived on demand.
        item = catalog.by_rank(0)
        n_chunks = int(40.0 / DEFAULT_LADDER.chunk_duration_s)
        for index in range(n_chunks):
            server.cache.insert(f"{item.content_id}#{index}@6.0", 24.0)

        class Policy(PlayerPolicy):
            def assign(self, player):
                return SessionAssignment(cdn=cdn)

            def rate_cap_mbps(self, player):
                return 1.5  # force a below-top rung -> transcoding path

        player = AdaptivePlayer(
            sim, net, "s0", "client", item,
            DEFAULT_LADDER, RateBasedAbr(), Policy(),
        )
        player.start()
        sim.run(until=400.0)
        assert player.ended
        assert transcoder.stats.jobs_started > 0
        assert cdn.origin.fetches == 0  # never had to touch the origin
        assert transcoder.active_jobs == 0  # all slots released
        assert player.qoe().buffering_ratio < 0.05
