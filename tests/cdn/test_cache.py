"""LRU and LFU caches: eviction order, capacity, stats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdn.cache import LfuCache, LruCache


class TestLru:
    def test_hit_and_miss_counting(self):
        cache = LruCache(100.0)
        assert not cache.lookup("a")
        cache.insert("a", 10.0)
        assert cache.lookup("a")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        cache = LruCache(20.0)
        cache.insert("a", 10.0)
        cache.insert("b", 10.0)
        cache.lookup("a")          # refresh a
        cache.insert("c", 10.0)    # must evict b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_oversized_item_not_admitted(self):
        cache = LruCache(5.0)
        assert not cache.insert("big", 10.0)
        assert len(cache) == 0

    def test_reinsert_refreshes_without_duplicating(self):
        cache = LruCache(20.0)
        cache.insert("a", 10.0)
        cache.insert("a", 10.0)
        assert len(cache) == 1
        assert cache.used_mbit == 10.0

    def test_warm(self):
        cache = LruCache(100.0)
        cache.warm({"a": 10.0, "b": 20.0})
        assert "a" in cache and "b" in cache

    def test_clear(self):
        cache = LruCache(100.0)
        cache.insert("a", 10.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_mbit == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1.0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.floats(min_value=0.5, max_value=10.0),
            ),
            max_size=60,
        )
    )
    def test_capacity_invariant(self, operations):
        cache = LruCache(25.0)
        for key, size in operations:
            if not cache.lookup(f"k{key}"):
                cache.insert(f"k{key}", size)
            assert cache.used_mbit <= 25.0 + 1e-9
            assert cache.used_mbit >= 0.0


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(20.0)
        cache.insert("hot", 10.0)
        cache.insert("cold", 10.0)
        for _ in range(5):
            cache.lookup("hot")
        cache.insert("new", 10.0)
        assert "hot" in cache
        assert "cold" not in cache

    def test_frequency_survives_heap_staleness(self):
        cache = LfuCache(30.0)
        cache.insert("a", 10.0)
        cache.insert("b", 10.0)
        cache.insert("c", 10.0)
        for _ in range(3):
            cache.lookup("a")
        cache.lookup("b")
        cache.insert("d", 10.0)  # evicts c (freq 1, oldest among lowest)
        assert "c" not in cache
        assert "a" in cache and "b" in cache

    def test_oversized_rejected(self):
        cache = LfuCache(5.0)
        assert not cache.insert("big", 6.0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.floats(min_value=0.5, max_value=8.0),
            ),
            max_size=60,
        )
    )
    def test_capacity_invariant(self, operations):
        cache = LfuCache(20.0)
        for key, size in operations:
            if not cache.lookup(f"k{key}"):
                cache.insert(f"k{key}", size)
            assert cache.used_mbit <= 20.0 + 1e-9
