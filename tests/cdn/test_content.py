"""Catalog construction and Zipf sampling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cdn.content import ContentCatalog


class TestConstruction:
    def test_size_and_ids(self):
        catalog = ContentCatalog(n_items=5, prefix="vid")
        assert len(catalog) == 5
        assert catalog.by_rank(0).content_id == "vid-00000"
        assert catalog.item("vid-00003") is catalog.by_rank(3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContentCatalog(n_items=0)
        with pytest.raises(ValueError):
            ContentCatalog(n_items=5, zipf_alpha=-1.0)

    def test_popularity_sums_to_one(self):
        catalog = ContentCatalog(n_items=20, zipf_alpha=1.2)
        total = sum(catalog.popularity(rank) for rank in range(20))
        assert total == pytest.approx(1.0)

    def test_popularity_monotone_decreasing(self):
        catalog = ContentCatalog(n_items=50, zipf_alpha=0.8)
        probabilities = [catalog.popularity(rank) for rank in range(50)]
        assert probabilities == sorted(probabilities, reverse=True)


class TestSampling:
    def test_skew_prefers_head(self):
        catalog = ContentCatalog(n_items=100, zipf_alpha=1.0)
        rng = random.Random(1)
        draws = [catalog.sample(rng) for _ in range(2000)]
        head_fraction = sum(
            1 for item in draws if item is catalog.by_rank(0)
        ) / len(draws)
        # rank-0 probability under Zipf(1) with N=100 is ~1/H_100 ~ 0.19
        assert 0.12 < head_fraction < 0.28

    def test_uniform_when_alpha_zero(self):
        catalog = ContentCatalog(n_items=4, zipf_alpha=0.0)
        assert catalog.popularity(0) == pytest.approx(0.25)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=200), st.integers())
    def test_sample_always_in_catalog(self, n_items, seed):
        catalog = ContentCatalog(n_items=n_items)
        rng = random.Random(seed)
        item = catalog.sample(rng)
        assert catalog.item(item.content_id) is item
