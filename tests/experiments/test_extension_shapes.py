"""Integration shapes for the extension experiments E9..E15.

Small/fast configurations; the benchmarks run the full-size versions.
"""

import pytest

from repro.baselines.modes import Mode
from repro.experiments import (
    exp_e9_recipe,
    exp_e10_timescales,
    exp_e11_privacy,
    exp_e12_attributes,
    exp_e13_controlplane,
    exp_e14_splits,
    exp_e15_resilience,
)
from repro.faults import PlanBuilder


class TestE9Recipe:
    def test_narrow_interface_closes_most_of_the_gap(self):
        result = exp_e9_recipe.run(
            seed=1, budgets=(1,), n_clients=16, horizon_s=700.0,
            te_period_s=40.0,
        )
        quo = result.row(config="status_quo")
        narrow = result.row(config="narrow-1")
        assert narrow["te_switches"] < quo["te_switches"] / 2
        assert narrow["engagement"] > quo["engagement"]


class TestE10Damping:
    def test_adaptive_te_damper_cuts_flapping(self):
        result = exp_e10_timescales.run_te_damping(
            seed=1, n_clients=14, horizon_s=800.0, te_period_s=25.0
        )
        undamped = result.row(te_damper="none")
        damped = result.row(te_damper="adaptive")
        assert damped["te_switches"] < undamped["te_switches"]
        assert damped["suppressed_changes"] > 0


class TestE11Privacy:
    def test_frontier_is_monotone_ish(self):
        light = exp_e11_privacy.run_epsilon(
            epsilon=10.0, seed=2, n_clients=14, horizon_s=700.0
        )
        heavy = exp_e11_privacy.run_epsilon(
            epsilon=0.02, seed=2, n_clients=14, horizon_s=700.0
        )
        assert light["te_switches"] <= heavy["te_switches"]
        assert light["on_green_path"]


class TestE12Attributes:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            config: exp_e12_attributes.run_config(
                config, seed=1, n_clients_per_isp=10, horizon_s=400.0
            )
            for config in ("status_quo", "eona_unscoped", "eona_scoped")
        }

    def test_scoping_spares_the_healthy_isp(self, rows):
        assert (
            rows["eona_scoped"]["isp2_bitrate"]
            > rows["eona_unscoped"]["isp2_bitrate"]
        )

    def test_both_eona_variants_fix_the_congested_isp(self, rows):
        assert (
            rows["eona_scoped"]["isp1_buffering"]
            <= rows["status_quo"]["isp1_buffering"]
        )
        assert (
            rows["eona_unscoped"]["isp1_buffering"]
            <= rows["status_quo"]["isp1_buffering"]
        )

    def test_scoped_matches_status_quo_on_healthy_isp(self, rows):
        assert rows["eona_scoped"]["isp2_bitrate"] == pytest.approx(
            rows["status_quo"]["isp2_bitrate"]
        )


class TestE13ControlPlane:
    def test_fleet_steering_evacuates_faulty_cdn(self):
        reactive = exp_e13_controlplane.run_config(
            "reactive", seed=1, n_clients=15, horizon_s=550.0
        )
        coordinated = exp_e13_controlplane.run_config(
            "coordinated", seed=1, n_clients=15, horizon_s=550.0
        )
        assert (
            coordinated["faulty_cdn_share_during_fault"]
            < reactive["faulty_cdn_share_during_fault"]
        )
        assert coordinated["migrations"] > 0
        assert coordinated["engagement"] >= reactive["engagement"]


class TestE14Splits:
    def test_split_unlocks_stranded_capacity(self):
        single = exp_e14_splits.run_config(
            "eona_single", seed=1, n_clients=20, horizon_s=600.0
        )
        split = exp_e14_splits.run_config(
            "eona_split", seed=1, n_clients=20, horizon_s=600.0
        )
        assert split["split_active"]
        assert split["mean_bitrate_mbps"] > single["mean_bitrate_mbps"]
        assert (
            split["peerB_util_loaded"] + split["peerC_util_loaded"]
            > single["peerB_util_loaded"] + single["peerC_util_loaded"]
        )


class TestE15Resilience:
    def test_link_flap_recovers_exactly(self):
        result = exp_e15_resilience.run_link_flap(seed=1)
        row = result.rows[0]
        assert row["mid_fault_divergence"] > 1.0
        assert row["post_recovery_divergence"] <= 1e-6
        assert row["faults_injected"] > 0
        assert row["faults_injected"] == row["faults_recovered"]

    def test_outage_trips_fallback_and_holds_baseline(self):
        small = dict(
            n_clients=12, access_capacity_mbps=18.0, horizon_s=420.0
        )
        plan = (
            PlanBuilder("shape-outage")
            .glass_outage("isp", at=40.0, until=240.0)
            .build()
        )
        quo = exp_e15_resilience._run_degraded_mode(
            "status_quo", 1, None, **small
        )
        degraded = exp_e15_resilience._run_degraded_mode(
            "eona_fallback", 1, plan, **small
        )
        assert degraded["glass_errors"] > 0
        assert degraded["fallback_activations"] >= 1
        assert degraded["fallback_reengagements"] >= 1
        assert degraded["engagement"] >= quo["engagement"] - 0.05
