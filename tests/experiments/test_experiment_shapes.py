"""Integration: each experiment reproduces its paper scenario's *shape*.

These are deliberately small/fast configurations of the E1..E10
experiments; the benchmarks run the full-size versions.  What is
asserted here is exactly what the paper claims qualitatively.
"""

import pytest

from repro.baselines.modes import Mode
from repro.experiments import (
    exp_e1_coarse_control,
    exp_e2_flash_crowd,
    exp_e3_inference,
    exp_e4_oscillation,
    exp_e5_energy,
    exp_e8_fairness,
)


@pytest.fixture(scope="module")
def e1():
    return {
        mode: exp_e1_coarse_control.run_mode(
            mode, seed=1, n_clients=10, n_sessions=14, horizon_s=500.0
        )
        for mode in (Mode.STATUS_QUO, Mode.EONA)
    }


class TestE1CoarseControl:
    def test_eona_retains_traffic_on_cdn_x(self, e1):
        assert e1[Mode.EONA]["traffic_retained_by_x"] == 1.0
        assert e1[Mode.STATUS_QUO]["traffic_retained_by_x"] < 1.0

    def test_eona_uses_server_switches_not_cdn_switches(self, e1):
        assert e1[Mode.EONA]["cdn_switches"] == 0
        assert e1[Mode.EONA]["server_switches"] > 0
        assert e1[Mode.STATUS_QUO]["cdn_switches"] > 0

    def test_status_quo_pays_cold_origin(self, e1):
        assert e1[Mode.STATUS_QUO]["origin_y_fetches"] > 0
        assert e1[Mode.EONA]["origin_y_fetches"] == 0

    def test_eona_delivers_higher_bitrate(self, e1):
        assert (
            e1[Mode.EONA]["mean_bitrate_mbps"]
            > e1[Mode.STATUS_QUO]["mean_bitrate_mbps"]
        )


@pytest.fixture(scope="module")
def e2():
    kwargs = dict(seed=1, n_clients=15, peak_rate_per_s=1.0, horizon_s=400.0,
                  access_capacity_mbps=25.0)
    return {
        mode: exp_e2_flash_crowd.run_mode(mode, **kwargs)
        for mode in (Mode.STATUS_QUO, Mode.EONA)
    }


class TestE2FlashCrowd:
    def test_eona_cuts_buffering(self, e2):
        assert (
            e2[Mode.EONA]["buffering_ratio"]
            < e2[Mode.STATUS_QUO]["buffering_ratio"]
        )

    def test_eona_trades_bitrate_down(self, e2):
        assert (
            e2[Mode.EONA]["mean_bitrate_mbps"]
            <= e2[Mode.STATUS_QUO]["mean_bitrate_mbps"]
        )

    def test_futile_cdn_switching_eliminated(self, e2):
        assert e2[Mode.STATUS_QUO]["cdn_switches"] > 0
        assert e2[Mode.EONA]["cdn_switches"] == 0

    def test_engagement_improves(self, e2):
        assert e2[Mode.EONA]["engagement"] > e2[Mode.STATUS_QUO]["engagement"]


class TestE3Inference:
    def test_inference_carries_irreducible_error(self):
        records = exp_e3_inference.generate_pageloads(
            seed=1, n_clients=6, n_pages_per_client=15
        )
        report = exp_e3_inference.evaluate_inference(records, seed=1)
        assert report["mae_s"] > 0.05
        assert report["relative_mae"] > 0.1
        assert report["spearman"] < 1.0

    def test_inference_still_informative(self):
        records = exp_e3_inference.generate_pageloads(
            seed=1, n_clients=6, n_pages_per_client=15
        )
        report = exp_e3_inference.evaluate_inference(records, seed=1)
        assert report["spearman"] > 0.5


@pytest.fixture(scope="module")
def e4():
    kwargs = dict(seed=1, n_clients=16, horizon_s=800.0, te_period_s=40.0)
    return {
        mode: exp_e4_oscillation.run_mode(mode, **kwargs)
        for mode in (Mode.STATUS_QUO, Mode.EONA)
    }


class TestE4Oscillation:
    def test_status_quo_oscillates(self, e4):
        assert e4[Mode.STATUS_QUO]["te_switches"] >= 6

    def test_eona_converges(self, e4):
        assert e4[Mode.EONA]["te_switches"] <= 3

    def test_eona_lands_on_green_path_under_load(self, e4):
        assert e4[Mode.EONA]["on_green_path"]

    def test_congested_time_reduced(self, e4):
        assert (
            e4[Mode.EONA]["peerB_congested_frac"]
            < e4[Mode.STATUS_QUO]["peerB_congested_frac"]
        )

    def test_switch_count_grows_with_horizon_only_for_status_quo(self):
        growth = exp_e4_oscillation.run_switch_growth(
            seed=1, horizons=(400.0, 800.0), n_clients=16, te_period_s=40.0
        )
        short, long = growth.rows
        assert long["status_quo_te_switches"] > short["status_quo_te_switches"]
        assert long["eona_te_switches"] <= short["eona_te_switches"] + 1


@pytest.fixture(scope="module")
def e5():
    kwargs = dict(seed=1, day_s=1200.0, n_servers=4, n_clients=20,
                  mean_rate_per_s=0.2)
    return {
        name: exp_e5_energy.run_policy(name, **kwargs)
        for name in ("conservative", "schedule", "eona")
    }


class TestE5Energy:
    def test_conservative_saves_nothing(self, e5):
        assert e5["conservative"]["energy_saved_pct"] == 0.0

    def test_eona_saves_energy(self, e5):
        assert e5["eona"]["energy_saved_pct"] > 10.0

    def test_eona_preserves_qoe_better_than_schedule(self, e5):
        assert e5["eona"]["buffering_ratio"] <= e5["schedule"]["buffering_ratio"]
        assert e5["eona"]["abandoned"] <= e5["schedule"]["abandoned"]

    def test_eona_qoe_near_conservative(self, e5):
        assert e5["eona"]["buffering_ratio"] < 0.01


class TestE8Fairness:
    def test_eona_helps_both_apps_and_splits_peerings(self):
        kwargs = dict(seed=1, n_heavy=10, n_light=5, horizon_s=600.0,
                      te_period_s=40.0)
        quo = exp_e8_fairness.run_mode(Mode.STATUS_QUO, **kwargs)
        eona = exp_e8_fairness.run_mode(Mode.EONA, **kwargs)
        assert eona["heavy_engagement"] >= quo["heavy_engagement"]
        assert eona["light_engagement"] >= quo["light_engagement"]
        assert eona["te_switches"] < quo["te_switches"]
