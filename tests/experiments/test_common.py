"""Experiment result tables and helpers."""

import pytest

from repro.experiments.common import ExperimentResult, jain_index


class TestResultTable:
    def test_add_and_match_rows(self):
        result = ExperimentResult(name="X")
        result.add_row(mode="a", value=1.0)
        result.add_row(mode="b", value=2.0)
        assert result.row(mode="b")["value"] == 2.0
        with pytest.raises(KeyError):
            result.row(mode="missing")

    def test_column(self):
        result = ExperimentResult(name="X")
        result.add_row(v=1)
        result.add_row(v=2)
        assert result.column("v") == [1, 2]

    def test_table_renders_all_columns(self):
        result = ExperimentResult(name="X", notes="note")
        result.add_row(a=1, b=2.34567)
        result.add_row(a=3, c="z")
        text = result.table_str()
        assert "== X ==" in text
        for fragment in ("a", "b", "c", "2.346", "z", "(note)"):
            assert fragment in text

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult(name="E").table_str()


class TestExports:
    def _result(self):
        result = ExperimentResult(name="X", notes="n")
        result.add_row(mode="a", value=1.5)
        result.add_row(mode="b", value=2.0, extra="z")
        return result

    def test_csv_round_trips(self):
        import csv
        import io

        text = self._result().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["mode"] == "a"
        assert rows[1]["extra"] == "z"
        assert rows[0]["extra"] == ""

    def test_json_round_trips(self):
        import json

        doc = json.loads(self._result().to_json())
        assert doc["name"] == "X"
        assert doc["rows"][1]["value"] == 2.0

    def test_save_formats(self, tmp_path):
        result = self._result()
        for fmt, suffix in (("txt", ".txt"), ("csv", ".csv"), ("json", ".json")):
            path = result.save(str(tmp_path), fmt=fmt)
            assert path.endswith(suffix)
            assert (tmp_path / f"X{suffix}").read_text()

    def test_save_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            self._result().save(str(tmp_path), fmt="xml")


class TestJain:
    def test_equal_is_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
