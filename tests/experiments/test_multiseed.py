"""Multi-seed aggregation, including a real cross-seed robustness check."""

import pytest

from repro.baselines.modes import Mode
from repro.experiments.multiseed import aggregate_rows, multiseed_result, run_seeds


def _mini_world_row(seed: int, n_transfers: int = 6) -> dict:
    """Module-level (hence picklable) row_fn: a tiny real simulation."""
    from repro.core.context import build_context
    from repro.network.topology import NodeKind, Topology

    topo = Topology("mini")
    topo.add_node("a", NodeKind.SERVER)
    topo.add_node("b", NodeKind.CLIENT)
    topo.add_link("a", "b", 10.0, delay_ms=1)
    ctx = build_context(topology=topo, seed=seed)
    rng = ctx.rng.get("sizes")
    for _ in range(n_transfers):
        ctx.network.start_transfer("a", "b", size_mbit=rng.uniform(1.0, 20.0))
    ctx.run(until=60.0)
    ctx.network.sync()
    link_id = next(iter(ctx.network.link_stats))
    return {
        "seed": seed,
        "completed": float(ctx.network.completed_transfers),
        "mean_util": ctx.network.link_stats[link_id].mean_utilization,
        "all_done": ctx.network.completed_transfers == n_transfers,
        "label": "mini",
    }


class TestAggregation:
    def test_numeric_mean_std(self):
        rows = [{"x": 1.0}, {"x": 3.0}]
        out = aggregate_rows(rows)
        assert out["x_mean"] == 2.0
        assert out["x_std"] == 1.0
        assert out["n_seeds"] == 2

    def test_bool_fraction(self):
        rows = [{"ok": True}, {"ok": False}, {"ok": True}]
        assert aggregate_rows(rows)["ok_frac"] == pytest.approx(2 / 3)

    def test_labels_preserved(self):
        rows = [{"mode": "eona", "x": 1.0}, {"mode": "eona", "x": 2.0}]
        assert aggregate_rows(rows)["mode"] == "eona"

    def test_mismatched_labels_joined(self):
        out = aggregate_rows([{"egress": "B"}, {"egress": "C"}])
        assert out["egress"] == "B|C"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_rows([])
        with pytest.raises(ValueError):
            run_seeds(lambda seed: {}, [])

    def test_union_of_keys_across_rows(self):
        # A column appearing only from some seed onward must still be
        # aggregated (over the rows that carry it), not dropped.
        rows = [{"x": 1.0}, {"x": 3.0, "y": 10.0}]
        out = aggregate_rows(rows)
        assert out["x_mean"] == 2.0
        assert out["y_mean"] == 10.0
        assert out["y_std"] == 0.0

    def test_column_order_is_first_seen(self):
        rows = [{"a": 1.0, "b": 2.0}, {"c": 3.0, "a": 1.0}]
        keys = list(aggregate_rows(rows))
        assert keys.index("a_mean") < keys.index("b_mean") < keys.index("c_mean")

    def test_mixed_type_column_falls_back_to_labels(self):
        # int in one seed, string in another: not aggregatable as
        # numbers, so it reduces like a label column.
        out = aggregate_rows([{"v": 3}, {"v": "n/a"}])
        assert out["v"] == "3|n/a"
        assert "v_mean" not in out

    def test_underscore_keys_skipped(self):
        rows = [
            {"x": 1.0, "_counters": {"solves": 5}},
            {"x": 3.0, "_counters": {"solves": 7}},
        ]
        out = aggregate_rows(rows)
        assert out["x_mean"] == 2.0
        assert "_counters" not in out and "_counters_mean" not in out


class TestParallelSeeds:
    def test_parallel_matches_serial_rows_exactly(self):
        seeds = [1, 2, 3, 4]
        serial = run_seeds(_mini_world_row, seeds)
        parallel = run_seeds(_mini_world_row, seeds, parallel=True, max_workers=2)
        assert parallel == serial  # identical rows, identical order

    def test_parallel_matches_serial_aggregates(self):
        seeds = [5, 6, 7]
        serial = aggregate_rows(run_seeds(_mini_world_row, seeds))
        parallel = aggregate_rows(
            run_seeds(_mini_world_row, seeds, parallel=True, max_workers=3)
        )
        assert parallel == serial

    def test_kwargs_forwarded_to_workers(self):
        rows = run_seeds(
            _mini_world_row, [1, 2], parallel=True, max_workers=2, n_transfers=3
        )
        assert [row["completed"] for row in rows] == [3.0, 3.0]

    def test_empty_seeds_rejected_in_parallel_mode(self):
        with pytest.raises(ValueError):
            run_seeds(_mini_world_row, [], parallel=True)


class TestCrossSeedRobustness:
    def test_e1_shape_holds_across_seeds(self):
        """The E1 headline (EONA retains traffic, no origin-Y cost)
        is a property of the mechanism, not of one seed."""
        from repro.experiments.exp_e1_coarse_control import run_mode

        result = multiseed_result(
            name="E1-multiseed",
            row_fn=run_mode,
            configs=[
                {"mode": Mode.STATUS_QUO, "n_clients": 8, "n_sessions": 10,
                 "horizon_s": 400.0},
                {"mode": Mode.EONA, "n_clients": 8, "n_sessions": 10,
                 "horizon_s": 400.0},
            ],
            seeds=[1, 2, 3],
        )
        quo = result.row(mode="status_quo")
        eona = result.row(mode="eona")
        assert eona["traffic_retained_by_x_mean"] == 1.0
        assert eona["traffic_retained_by_x_std"] == 0.0
        assert quo["traffic_retained_by_x_mean"] < 1.0
        assert eona["origin_y_fetches_mean"] == 0.0
        assert (
            eona["mean_bitrate_mbps_mean"] > quo["mean_bitrate_mbps_mean"]
        )
