"""E11 privacy ablation (small config) and the CLI surface."""

import random

import pytest

from repro.core.privacy import noise_numeric_fields
from repro.experiments import exp_e11_privacy, registry
from repro.cli import build_parser, main


class TestNoiseNumericFields:
    def test_nested_selected_container(self):
        payload = {"time": 5.0, "demand_mbps": {"x": 70.0, "y": 2.0}}
        out = noise_numeric_fields(
            payload, epsilon=0.5, sensitivity=3.0,
            rng=random.Random(0), fields=("demand_mbps",),
        )
        assert out["time"] == 5.0
        assert out["demand_mbps"]["x"] != 70.0

    def test_empty_fields_noises_everything(self):
        payload = {"a": 1.0, "b": {"c": 2.0}}
        out = noise_numeric_fields(
            payload, epsilon=0.5, sensitivity=1.0, rng=random.Random(1)
        )
        assert out["a"] != 1.0
        assert out["b"]["c"] != 2.0

    def test_booleans_and_strings_untouched(self):
        payload = {"flag": True, "name": "x", "v": 1.0}
        out = noise_numeric_fields(
            payload, epsilon=0.5, sensitivity=1.0, rng=random.Random(2)
        )
        assert out["flag"] is True
        assert out["name"] == "x"

    def test_lists_of_dicts(self):
        payload = [{"v": 1.0}, {"v": 2.0}]
        out = noise_numeric_fields(
            payload, epsilon=0.5, sensitivity=1.0, rng=random.Random(3)
        )
        assert out[0]["v"] != 1.0

    def test_input_not_mutated(self):
        payload = {"v": 1.0}
        noise_numeric_fields(payload, 0.5, 1.0, random.Random(4))
        assert payload["v"] == 1.0


class TestE11Shape:
    def test_light_noise_preserves_convergence(self):
        row = exp_e11_privacy.run_epsilon(
            epsilon=10.0, seed=1, n_clients=16, horizon_s=700.0
        )
        assert row["te_switches"] <= 3
        assert row["on_green_path"]

    def test_heavy_noise_degrades(self):
        light = exp_e11_privacy.run_epsilon(
            epsilon=10.0, seed=1, n_clients=16, horizon_s=700.0
        )
        heavy = exp_e11_privacy.run_epsilon(
            epsilon=0.02, seed=1, n_clients=16, horizon_s=700.0
        )
        assert heavy["te_switches"] >= light["te_switches"]


class TestCli:
    def test_all_experiments_registered(self):
        expected = {f"e{i}" for i in range(1, 21)} | {"e7-cohort"}
        assert set(registry.experiment_ids()) == expected

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e4" in out and "oscillation" in out.lower()

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "e99"]) == 2

    def test_run_writes_tables(self, tmp_path, capsys):
        assert main(["run", "e1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E1-coarse-control" in out
        assert (tmp_path / "E1-coarse-control.txt").exists()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
