"""The declarative experiment registry: specs, checks, run artifacts."""

import importlib.util
import json
import os

import pytest

from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.experiments.spec import (
    ARTIFACT_SCHEMA,
    ExperimentSpec,
    RunArtifact,
    VariantSpec,
    any_of,
    check,
    seeds_arg,
)


def _result(*rows, name="T", notes=""):
    result = ExperimentResult(name=name, notes=notes)
    for row in rows:
        result.add_row(**row)
    return result


class TestRegistryCompleteness:
    def test_ids_are_e1_to_e20_plus_variants(self):
        expected = [f"e{i}" for i in range(1, 8)]
        expected.append("e7-cohort")
        expected.extend(f"e{i}" for i in range(8, 21))
        assert registry.experiment_ids() == expected

    def test_every_exp_module_registers(self):
        registered = {spec.module for spec in registry.all_specs()}
        assert registered == set(registry.experiment_modules())

    def test_every_variant_declares_checks(self):
        for spec in registry.all_specs():
            assert spec.variants, spec.exp_id
            for variant in spec.variants:
                assert variant.checks, f"{spec.exp_id}/{variant.name}"

    def test_get_unknown_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="e1, e2"):
            registry.get("e99")

    def test_conflicting_module_registration_rejected(self):
        spec = registry.get("e1")
        clone = ExperimentSpec(
            exp_id="e1",
            title=spec.title,
            source=spec.source,
            module="somewhere.else",
            variants=spec.variants,
        )
        with pytest.raises(ValueError, match="registered by both"):
            registry.register(clone)
        # Same-module re-registration stays idempotent.
        registry.register(spec)
        assert registry.get("e1") is spec

    def test_bench_harness_covers_every_variant(self):
        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks",
            "bench_experiments.py",
        )
        loader_spec = importlib.util.spec_from_file_location(
            "bench_experiments", os.path.abspath(path)
        )
        module = importlib.util.module_from_spec(loader_spec)
        loader_spec.loader.exec_module(module)
        covered = {
            (spec.exp_id, variant.name) for spec, variant in module._VARIANTS
        }
        expected = {
            (spec.exp_id, variant.name)
            for spec in registry.all_specs()
            for variant in spec.variants
        }
        assert covered == expected


class TestSpecValidation:
    def test_bad_experiment_id(self):
        with pytest.raises(ValueError, match="experiment id"):
            ExperimentSpec(
                exp_id="x1", title="t", source="s", module="m", variants=()
            )

    def test_duplicate_variant_names(self):
        variant = VariantSpec(name="v", runner=lambda seed: _result())
        with pytest.raises(ValueError, match="duplicate variant"):
            ExperimentSpec(
                exp_id="e99", title="t", source="s", module="m",
                variants=(variant, variant),
            )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown check op"):
            check("x", "a", "~=", 1.0)

    def test_comparison_needs_rhs(self):
        with pytest.raises(ValueError, match="need a value"):
            check("x", "a", "<")

    def test_unary_takes_no_rhs(self):
        with pytest.raises(ValueError, match="no right-hand side"):
            check("x", "a", "truthy", 1.0)

    def test_any_of_needs_two(self):
        with pytest.raises(ValueError):
            any_of(check("x", "a", ">", 0))


class TestCheckEvaluation:
    def test_constant_comparison(self):
        result = _result({"mode": "eona", "x": 2.0})
        assert check("x", "eona", ">", 1.0).evaluate(result, "mode").passed
        assert not check("x", "eona", "<", 1.0).evaluate(result, "mode").passed

    def test_row_reference_with_factor(self):
        result = _result(
            {"mode": "quo", "x": 10.0}, {"mode": "eona", "x": 4.0}
        )
        outcome = check("x", "eona", "<", 0.6, of="quo").evaluate(result, "mode")
        assert outcome.passed
        assert "0.6" in outcome.check

    def test_plus_offset(self):
        result = _result({"mode": "a", "x": 5.0}, {"mode": "b", "x": 5.5})
        assert (
            check("x", "b", "<=", of="a", plus=1.0).evaluate(result, "mode").passed
        )

    def test_of_column_same_row(self):
        result = _result({"n": 100, "allocated": 100}, {"n": 5, "allocated": 4})
        outcome = check("allocated", "*", "==", of_column="n").evaluate(
            result, "mode"
        )
        assert not outcome.passed  # second row violates

    def test_star_selects_all_rows(self):
        result = _result({"mode": "a", "x": 1.0}, {"mode": "b", "x": 2.0})
        assert check("x", "*", ">", 0).evaluate(result, "mode").passed
        assert not check("x", "*", ">", 1.5).evaluate(result, "mode").passed

    def test_positional_and_extremum_selectors(self):
        result = _result(
            {"mode": "a", "x": 1.0}, {"mode": "b", "x": 9.0},
            {"mode": "c", "x": 3.0},
        )
        assert check("x", "@first", "==", 1.0).evaluate(result, "mode").passed
        assert check("x", "@last", "==", 3.0).evaluate(result, "mode").passed
        assert (
            check("x", "@min", ">", 0.1, of="@max").evaluate(result, "mode").passed
        )

    def test_mapping_selector(self):
        result = _result(
            {"period": 15.0, "damping": "off", "x": 8.0},
            {"period": 15.0, "damping": "on", "x": 2.0},
        )
        outcome = check(
            "x", {"period": 15.0, "damping": "on"}, "<", 0.5,
            of={"period": 15.0, "damping": "off"},
        ).evaluate(result, "mode")
        assert outcome.passed

    def test_numeric_row_key_match(self):
        result = _result({"epsilon": 1.0, "x": 2}, {"epsilon": 0.02, "x": 9})
        outcome = check("x", 0.02, ">", of=1.0, row_key="epsilon").evaluate(
            result, "mode"
        )
        assert outcome.passed

    def test_truthy_falsy(self):
        result = _result({"mode": "a", "ok": True, "bad": 0})
        assert check("ok", "a", "truthy").evaluate(result, "mode").passed
        assert check("bad", "a", "falsy").evaluate(result, "mode").passed

    def test_missing_row_fails_not_raises(self):
        result = _result({"mode": "a", "x": 1.0})
        outcome = check("x", "nope", ">", 0).evaluate(result, "mode")
        assert not outcome.passed
        assert "no row matching" in outcome.detail

    def test_ambiguous_reference_fails(self):
        result = _result({"mode": "a", "x": 1.0}, {"mode": "a", "x": 2.0})
        outcome = check("x", "*", ">", of="a").evaluate(result, "mode")
        assert not outcome.passed
        assert "matched 2 rows" in outcome.detail

    def test_non_numeric_lhs_fails_cleanly(self):
        result = _result({"mode": "a", "x": "label"})
        outcome = check("x", "a", ">", 0).evaluate(result, "mode")
        assert not outcome.passed
        assert "not numeric" in outcome.detail

    def test_any_of_disjunction(self):
        result = _result({"mode": "a", "x": 1.0, "y": 9.0})
        passing = any_of(check("x", "a", "<", 0.5), check("y", "a", ">", 5.0))
        failing = any_of(check("x", "a", "<", 0.5), check("y", "a", "<", 5.0))
        assert passing.evaluate(result, "mode").passed
        assert not failing.evaluate(result, "mode").passed
        assert " OR " in passing.describe()


def _mini_runner(seed: int) -> ExperimentResult:
    result = ExperimentResult(name="MINI-table", notes="synthetic")
    result.add_row(
        mode="quo", x=10.0 + seed, ok=False,
        _counters={"solve_calls": 3},
    )
    result.add_row(
        mode="eona", x=1.0 + seed, ok=True,
        _counters={"solve_calls": 4},
    )
    return result


_MINI_SPEC = ExperimentSpec(
    exp_id="e98",
    title="synthetic mini experiment",
    source="tests",
    module=__name__,
    variants=(
        VariantSpec(
            name="mini",
            runner=_mini_runner,
            checks=(
                check("x", "eona", "<", of="quo"),
                check("ok", "eona", "truthy"),
            ),
        ),
    ),
)


class TestRunExperiment:
    def test_single_seed_tables_and_checks(self):
        tables, artifact = registry.run_experiment(_MINI_SPEC, seeds=[0])
        assert [table.name for table in tables] == ["MINI-table"]
        assert tables[0].rows[0]["x"] == 10.0
        assert artifact.checks_passed
        assert artifact.counters == {"solve_calls": 7}
        assert artifact.seeds == [0]

    def test_multi_seed_aggregates(self):
        tables, artifact = registry.run_experiment(_MINI_SPEC, seeds=[0, 2])
        row = tables[0].rows[1]
        assert row["x_mean"] == pytest.approx(2.0)
        assert row["x_std"] == pytest.approx(1.0)
        assert row["ok_frac"] == 1.0
        assert "mean±std over seeds [0, 2]" in tables[0].notes
        # One outcome per check per seed.
        assert len(artifact.checks) == 4
        assert artifact.counters == {"solve_calls": 14}

    def test_no_checks_mode(self):
        _tables, artifact = registry.run_experiment(
            _MINI_SPEC, seeds=[0], evaluate=False
        )
        assert artifact.checks == []
        assert artifact.checks_passed  # vacuously

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            registry.run_experiment(_MINI_SPEC, seeds=[])

    def test_artifact_round_trip(self, tmp_path):
        _tables, artifact = registry.run_experiment(_MINI_SPEC, seeds=[0, 1])
        path = artifact.save(str(tmp_path))
        assert os.path.basename(path) == "BENCH_e98.json"
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == ARTIFACT_SCHEMA
        assert payload["checks_passed"] is True
        assert payload["provenance"]["package"] == "repro"
        restored = RunArtifact.from_dict(payload)
        assert restored.experiment == "e98"
        assert restored.seeds == [0, 1]
        assert restored.counters == artifact.counters
        assert restored.tables == artifact.tables

    def test_round_trip_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            RunArtifact.from_json(json.dumps({"schema": "bogus/9"}))


class TestSeedsArg:
    def test_range(self):
        assert seeds_arg("0..3") == [0, 1, 2, 3]

    def test_list(self):
        assert seeds_arg("0,5, 7") == [0, 5, 7]

    def test_mixed(self):
        assert seeds_arg("1,4..6") == [1, 4, 5, 6]

    def test_empty_and_backwards_rejected(self):
        with pytest.raises(ValueError):
            seeds_arg("")
        with pytest.raises(ValueError):
            seeds_arg("5..2")
